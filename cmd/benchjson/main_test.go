package main

import (
	"bufio"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: clustersim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCoreHotLoop/OP-8         	     165	   7140881 ns/op	   0.352 allocs/uop	   1394810 uops/s	  732355 B/op	    3524 allocs/op
BenchmarkCoreHotLoop/VC-8         	     154	   7769799 ns/op	   0.357 allocs/uop	   1287036 uops/s	  750798 B/op	    3572 allocs/op
PASS
ok  	clustersim	7.816s
`

func parseSample(t *testing.T, s string) map[string]Metrics {
	t.Helper()
	m, err := parse(bufio.NewScanner(strings.NewReader(s)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseBenchOutput(t *testing.T) {
	m := parseSample(t, sample)
	if len(m) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(m), m)
	}
	op, ok := m["CoreHotLoop/OP"]
	if !ok {
		t.Fatalf("missing CoreHotLoop/OP (GOMAXPROCS suffix not stripped?): %+v", m)
	}
	if op.NsPerOp != 7140881 || op.UopsPerSec != 1394810 || op.AllocsPerOp != 3524 {
		t.Errorf("bad metrics: %+v", op)
	}
	if op.AllocsPerUop != 0.352 {
		t.Errorf("allocs/uop = %v", op.AllocsPerUop)
	}
}

func TestParsePreservesDigitNamesWithoutProcsSuffix(t *testing.T) {
	// A 1-CPU run has no "-8" decoration; a benchmark legitimately named
	// "gzip-1" must survive. Suffixes are stripped only when uniform
	// across the whole run.
	out := `BenchmarkTrace/gzip-1 	 100	 50 ns/op
BenchmarkCoreHotLoop/OP 	 100	 60 ns/op
`
	m := parseSample(t, out)
	if _, ok := m["Trace/gzip-1"]; !ok {
		t.Errorf("benchmark name mangled on suffix-less run: %+v", m)
	}
	if _, ok := m["CoreHotLoop/OP"]; !ok {
		t.Errorf("plain name lost: %+v", m)
	}

	// Uniform decoration still strips.
	out8 := `BenchmarkTrace/gzip-1-8 	 100	 50 ns/op
BenchmarkCoreHotLoop/OP-8 	 100	 60 ns/op
`
	m = parseSample(t, out8)
	if _, ok := m["Trace/gzip-1"]; !ok {
		t.Errorf("uniform -8 suffix not stripped: %+v", m)
	}
}

func TestCompareGates(t *testing.T) {
	base := parseSample(t, sample)

	// Identical run: clean.
	if p := compare(base, base, 0.20, 0.25); len(p) != 0 {
		t.Errorf("self-comparison flagged: %v", p)
	}

	// 30% throughput drop against a 20% budget: flagged.
	slow := parseSample(t, sample)
	m := slow["CoreHotLoop/OP"]
	m.UopsPerSec *= 0.7
	slow["CoreHotLoop/OP"] = m
	if p := compare(slow, base, 0.20, 0.25); len(p) != 1 || !strings.Contains(p[0], "throughput") {
		t.Errorf("want one throughput failure, got %v", p)
	}

	// Allocation growth beyond budget: flagged.
	leaky := parseSample(t, sample)
	m = leaky["CoreHotLoop/VC"]
	m.AllocsPerUop = 2.5
	leaky["CoreHotLoop/VC"] = m
	if p := compare(leaky, base, 0.20, 0.25); len(p) != 1 || !strings.Contains(p[0], "allocations") {
		t.Errorf("want one allocation failure, got %v", p)
	}

	// Disjoint benchmark sets: the gate must refuse to pass vacuously.
	if p := compare(map[string]Metrics{"Other": {}}, base, 0.20, 0.25); len(p) != 1 {
		t.Errorf("want a no-match failure, got %v", p)
	}
}

const fixedCostSample = `BenchmarkCoreConstruction/Fresh-8  	    1588	  171575 ns/op	 1209562 B/op	      70 allocs/op
BenchmarkCoreConstruction/Pooled-8 	    8218	   29234 ns/op	     128 B/op	       3 allocs/op
BenchmarkTraceCacheConcurrentHit/Serial-8   	 264	  928080 ns/op	 1.000 unpacks/op	 325334 B/op	 23286 allocs/op
BenchmarkTraceCacheConcurrentHit/Parallel-8 	 492242	 482.9 ns/op	 0.0000020 unpacks/op	 136 B/op	 5 allocs/op
`

func TestCompareGatesFixedCostBenchmarks(t *testing.T) {
	base := parseSample(t, fixedCostSample)
	if got := base["TraceCacheConcurrentHit/Serial"].UnpacksPerOp; got != 1.0 {
		t.Fatalf("unpacks/op not parsed: %v", got)
	}

	if p := compare(base, base, 0.20, 0.25); len(p) != 0 {
		t.Errorf("self-comparison flagged: %v", p)
	}

	// A pooled Reset that starts allocating per-iteration (pooling broken)
	// must trip the allocs/op gate despite the +2 absolute slack.
	leaky := parseSample(t, fixedCostSample)
	m := leaky["CoreConstruction/Pooled"]
	m.AllocsPerOp = 70
	leaky["CoreConstruction/Pooled"] = m
	if p := compare(leaky, base, 0.20, 0.25); len(p) != 1 || !strings.Contains(p[0], "allocs/op") {
		t.Errorf("want one allocs/op failure, got %v", p)
	}

	// Broken single-flight: every parallel hit decompressing privately
	// pushes unpacks/op to 1, far over the near-zero baseline's budget.
	unshared := parseSample(t, fixedCostSample)
	m = unshared["TraceCacheConcurrentHit/Parallel"]
	m.UnpacksPerOp = 1.0
	unshared["TraceCacheConcurrentHit/Parallel"] = m
	if p := compare(unshared, base, 0.20, 0.25); len(p) != 1 || !strings.Contains(p[0], "sharing") {
		t.Errorf("want one sharing failure, got %v", p)
	}

	// Jitter around a near-zero baseline stays within the absolute slack.
	jitter := parseSample(t, fixedCostSample)
	m = jitter["TraceCacheConcurrentHit/Parallel"]
	m.UnpacksPerOp = 0.05
	jitter["TraceCacheConcurrentHit/Parallel"] = m
	if p := compare(jitter, base, 0.20, 0.25); len(p) != 0 {
		t.Errorf("jitter within slack flagged: %v", p)
	}
}

const servingSample = `BenchmarkServingWarmFetch-64     	   12000	   82000 ns/op	   12100 req/s	   4.10 p50-ms	  11.30 p99-ms
BenchmarkServingWarmFetchETag-64 	   48000	   20000 ns/op	   49000 req/s	   0.90 p50-ms	   3.10 p99-ms
BenchmarkServingSSEFanout-64     	     600	 1600000 ns/op	     610 req/s	  90.00 p50-ms	 210.00 p99-ms
`

func TestParseServingMetrics(t *testing.T) {
	m := parseSample(t, servingSample)
	f, ok := m["ServingWarmFetch"]
	if !ok {
		t.Fatalf("missing ServingWarmFetch: %+v", m)
	}
	if f.ReqPerSec != 12100 || f.P50Ms != 4.10 || f.P99Ms != 11.30 {
		t.Errorf("serving metrics = %+v", f)
	}
}

func TestCompareGatesServingBenchmarks(t *testing.T) {
	base := parseSample(t, servingSample)

	if p := compare(base, base, 0.20, 0.25); len(p) != 0 {
		t.Errorf("self-comparison flagged: %v", p)
	}

	// 30% req/s drop against a 20% budget: flagged.
	slow := parseSample(t, servingSample)
	m := slow["ServingWarmFetch"]
	m.ReqPerSec *= 0.7
	slow["ServingWarmFetch"] = m
	if p := compare(slow, base, 0.20, 0.25); len(p) != 1 || !strings.Contains(p[0], "req/s") {
		t.Errorf("want one req/s failure, got %v", p)
	}

	// p99 blown past budget: flagged.
	spiky := parseSample(t, servingSample)
	m = spiky["ServingSSEFanout"]
	m.P99Ms = 400
	spiky["ServingSSEFanout"] = m
	if p := compare(spiky, base, 0.20, 0.25); len(p) != 1 || !strings.Contains(p[0], "p99") {
		t.Errorf("want one p99 failure, got %v", p)
	}

	// Sub-millisecond baselines ride the 1 ms absolute slack: a 0.90 ms
	// p50 drifting to 1.8 ms is noise, not a regression.
	drift := parseSample(t, servingSample)
	m = drift["ServingWarmFetchETag"]
	m.P50Ms = 1.8
	drift["ServingWarmFetchETag"] = m
	if p := compare(drift, base, 0.20, 0.25); len(p) != 0 {
		t.Errorf("sub-ms drift within slack flagged: %v", p)
	}

	// But a real latency explosion on the same benchmark still trips.
	m.P50Ms = 6.0
	drift["ServingWarmFetchETag"] = m
	if p := compare(drift, base, 0.20, 0.25); len(p) != 1 || !strings.Contains(p[0], "p50") {
		t.Errorf("want one p50 failure, got %v", p)
	}
}

func TestOutRefreshPreservesHistory(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/snap.json"
	old := Snapshot{
		Schema:     1,
		Note:       "keep me",
		Benchmarks: map[string]Metrics{"CoreHotLoop/OP": {UopsPerSec: 1}},
		Before:     map[string]Metrics{"CoreHotLoop/OP": {UopsPerSec: 0.5}},
	}
	blob, err := json.Marshal(old)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := writeSnapshot(path, "", parseSample(t, sample)); err != nil {
		t.Fatal(err)
	}
	written, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(written, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Note != "keep me" {
		t.Errorf("note lost on refresh: %q", snap.Note)
	}
	if snap.Before["CoreHotLoop/OP"].UopsPerSec != 0.5 {
		t.Errorf("before block lost on refresh: %+v", snap.Before)
	}
	if snap.Benchmarks["CoreHotLoop/OP"].UopsPerSec == 1 {
		t.Error("benchmarks not refreshed")
	}
}
