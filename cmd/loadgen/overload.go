package main

// The -overload phase is the admission-control acceptance demo: two
// tenants share one limited clusterd — an interactive tenant submitting
// one job at a time, and a bulk tenant flooding far past capacity. The
// phase self-asserts the overload contract and exits nonzero when any
// clause fails, so CI pins it:
//
//   - the interactive lane's p99 job latency under flood stays within
//     3x its uncontended baseline (weighted-fair lanes, not FIFO);
//   - bulk overflow is shed with 429 + Retry-After, visible in
//     /metrics as clusterd_admission_rejects_total{reason};
//   - every accepted job completes exactly once, and every result blob
//     fetched twice is byte-identical.
//
// Jobs are cache-busted (a fresh uop count per submission), so every
// accepted job truly simulates — the phase exercises the engine's lanes
// and the admission window, not the warm serving path.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clustersim/internal/api"
)

// overload drives the two-tenant storm. Returns the process exit code.
func overload(hc *http.Client, base, token string, uops int, flood int, samples int) int {
	o := &overloadRunner{hc: hc, base: base, token: token, uopsBase: uops}

	rejectsBefore, rejectsErr := scrapeAdmissionRejects(hc, token, base)

	// Uncontended baseline: the interactive tenant alone.
	baseline, err := o.measureInteractive(samples)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: overload baseline:", err)
		return 1
	}

	// The flood: bulk tenant hammers until told to stop, retrying 429s
	// after a short pause (deliberately not the full Retry-After — the
	// point is sustained offered load ≥ 2x capacity).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var floodErr atomic.Value
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, retryAfter, err := o.submitOne("bulk", "bulk")
				switch {
				case err != nil:
					floodErr.CompareAndSwap(nil, err)
					return
				case code == http.StatusTooManyRequests:
					o.shed.Add(1)
					if retryAfter == "" {
						floodErr.CompareAndSwap(nil, fmt.Errorf("429 without Retry-After"))
						return
					}
					select {
					// Retry well under the server's Retry-After (so offered
					// load stays far above capacity) but not so hot that the
					// shed traffic itself becomes the contention being
					// measured on small CI runners.
					case <-time.After(25 * time.Millisecond):
					case <-stop:
						return
					}
				case code != http.StatusAccepted:
					floodErr.CompareAndSwap(nil, fmt.Errorf("bulk submit: status %d", code))
					return
				}
			}
		}()
	}
	time.Sleep(300 * time.Millisecond) // let the flood saturate the lanes

	contended, err := o.measureInteractive(samples)
	close(stop)
	wg.Wait()
	if err == nil {
		if fe := floodErr.Load(); fe != nil {
			err = fe.(error)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: overload storm:", err)
		return 1
	}

	// Settle: every accepted job — bulk and interactive — must complete
	// exactly once.
	if err := o.verifyAccepted(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: overload settle:", err)
		return 1
	}

	basePD := percentile(baseline, 0.99)
	contPD := percentile(contended, 0.99)
	ratio := contPD.Seconds() / basePD.Seconds()
	fmt.Printf("overload: interactive p99 %s uncontended -> %s under %dx flood (%.2fx), %d bulk jobs shed, %d accepted jobs verified\n",
		basePD.Round(time.Microsecond), contPD.Round(time.Microsecond), flood, ratio,
		o.shed.Load(), o.verified.Load())

	failed := false
	if o.shed.Load() == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: FAIL: flood never saw a 429 — the server is not limiting (start clusterd with -quota/-rate)")
		failed = true
	}
	if ratio > 3.0 {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: interactive p99 degraded %.2fx under flood, bound is 3x\n", ratio)
		failed = true
	}
	if rejectsErr == nil {
		rejectsAfter, err := scrapeAdmissionRejects(hc, token, base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: FAIL: /metrics scrape after storm:", err)
			failed = true
		} else if rejectsAfter <= rejectsBefore {
			fmt.Fprintln(os.Stderr, "loadgen: FAIL: clusterd_admission_rejects_total did not advance over the storm")
			failed = true
		}
	} else {
		fmt.Fprintln(os.Stderr, "loadgen: FAIL: /metrics scrape before storm:", rejectsErr)
		failed = true
	}
	if failed {
		return 1
	}
	return 0
}

// accepted is one admitted submission to settle and verify.
type accepted struct {
	id   string
	keys []string
}

type overloadRunner struct {
	hc          *http.Client
	base, token string
	uopsBase    int
	ctr         atomic.Int64 // cache-buster: every job gets fresh uops

	mu       sync.Mutex
	accepted []accepted

	shed     atomic.Int64
	verified atomic.Int64
}

// submitOne posts a single-job batch for tenant on the given lane. The
// job's uop count is unique per call, so no two submissions share a
// result key.
func (o *overloadRunner) submitOne(tenant, lane string) (status int, retryAfter string, err error) {
	uops := o.uopsBase + int(o.ctr.Add(1))
	body := fmt.Sprintf(`{"jobs":[{"simpoint":"gzip-1","setup":{"kind":"OP","clusters":2},"opts":{"num_uops":%d}}],"priority":%q}`,
		uops, lane)
	req, err := http.NewRequest(http.MethodPost, o.base+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.TenantHeader, tenant)
	if o.token != "" {
		req.Header.Set("Authorization", "Bearer "+o.token)
	}
	resp, err := o.hc.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", err
	}
	if resp.StatusCode == http.StatusAccepted {
		var sub api.SubmitResponse
		if err := json.Unmarshal(blob, &sub); err != nil {
			return 0, "", fmt.Errorf("undecodable submit ack: %w", err)
		}
		o.mu.Lock()
		o.accepted = append(o.accepted, accepted{id: sub.ID, keys: sub.Keys})
		o.mu.Unlock()
	}
	return resp.StatusCode, resp.Header.Get("Retry-After"), nil
}

// measureInteractive runs n sequential interactive jobs, returning each
// job's submit-to-done latency sorted ascending. The interactive tenant
// must never be shed — it submits one job at a time.
func (o *overloadRunner) measureInteractive(n int) ([]time.Duration, error) {
	lats := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		code, _, err := o.submitOne("interactive", "interactive")
		if err != nil {
			return nil, err
		}
		if code != http.StatusAccepted {
			return nil, fmt.Errorf("interactive submit shed with status %d — per-tenant isolation is broken", code)
		}
		o.mu.Lock()
		sub := o.accepted[len(o.accepted)-1]
		o.mu.Unlock()
		if err := o.waitDone(sub.id, 60*time.Second); err != nil {
			return nil, err
		}
		lats = append(lats, time.Since(t0))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats, nil
}

// waitDone polls a submission until the server reports it done.
func (o *overloadRunner) waitDone(id string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var status api.StatusResponse
		if err := o.getJSON("/v1/jobs/"+url.PathEscape(id), &status); err != nil {
			return err
		}
		if status.Done {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("submission %s still running after %s — accepted work was lost", id, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// verifyAccepted settles every admitted submission and checks the
// exactly-once and byte-identical clauses: all jobs report exactly one
// event each with no error, and each result blob fetched twice comes
// back identical.
func (o *overloadRunner) verifyAccepted() error {
	o.mu.Lock()
	subs := append([]accepted(nil), o.accepted...)
	o.mu.Unlock()
	for _, sub := range subs {
		if err := o.waitDone(sub.id, 120*time.Second); err != nil {
			return err
		}
		var status api.StatusResponse
		if err := o.getJSON("/v1/jobs/"+url.PathEscape(sub.id), &status); err != nil {
			return err
		}
		if status.Completed != status.Total || len(status.Results) != status.Total {
			return fmt.Errorf("submission %s: %d/%d events for %d jobs — lost or duplicated work",
				sub.id, len(status.Results), status.Completed, status.Total)
		}
		seen := map[int]bool{}
		for _, ev := range status.Results {
			if seen[ev.Index] {
				return fmt.Errorf("submission %s: job %d reported twice", sub.id, ev.Index)
			}
			seen[ev.Index] = true
			if ev.Error != "" {
				return fmt.Errorf("submission %s job %d failed: %s (%s)", sub.id, ev.Index, ev.Error, ev.Code)
			}
		}
		for _, key := range sub.keys {
			first, err := o.fetchRaw(key)
			if err != nil {
				return err
			}
			second, err := o.fetchRaw(key)
			if err != nil {
				return err
			}
			if !bytes.Equal(first, second) {
				return fmt.Errorf("result %s not byte-identical across fetches", key)
			}
		}
		o.verified.Add(int64(status.Total))
	}
	return nil
}

func (o *overloadRunner) fetchRaw(key string) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, o.base+"/v1/results?raw=1&key="+url.QueryEscape(key), nil)
	if err != nil {
		return nil, err
	}
	if o.token != "" {
		req.Header.Set("Authorization", "Bearer "+o.token)
	}
	resp, err := o.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("result %s: status %d", key, resp.StatusCode)
	}
	return blob, nil
}

func (o *overloadRunner) getJSON(path string, v any) error {
	req, err := http.NewRequest(http.MethodGet, o.base+path, nil)
	if err != nil {
		return err
	}
	if o.token != "" {
		req.Header.Set("Authorization", "Bearer "+o.token)
	}
	resp, err := o.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("%s: status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// percentile reads the p-th percentile from an ascending-sorted slice.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(p*float64(len(sorted)-1))]
}

// scrapeAdmissionRejects sums clusterd_admission_rejects_total across
// its reason labels from /metrics.
func scrapeAdmissionRejects(hc *http.Client, token, base string) (float64, error) {
	req, err := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return 0, err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	total, found := 0.0, false
	for _, line := range strings.Split(string(blob), "\n") {
		if !strings.HasPrefix(line, "clusterd_admission_rejects_total{") {
			continue
		}
		if i := strings.LastIndex(line, "}"); i >= 0 {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimSpace(line[i+1:]), "%g", &v); err == nil {
				total += v
				found = true
			}
		}
	}
	if !found {
		return 0, fmt.Errorf("clusterd_admission_rejects_total not exposed — admission control is off")
	}
	return total, nil
}
