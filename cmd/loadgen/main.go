// Command loadgen drives a live clusterd with warm-cache serving traffic
// and reports throughput and latency in `go test -bench` line format, so
// cmd/benchjson can snapshot and gate the serving path exactly like the
// core hot loop.
//
// The run has two halves. A warm-up phase submits a small batch through
// the client SDK and waits for completion, so every later request hits
// results that already exist. The measured phase then hammers four
// serving paths with -clients concurrent workers for -duration each:
//
//	ServingSubmitWarm   POST /v1/jobs resubmitting the warm batch
//	                    (served from the result store, no simulation)
//	ServingWarmFetch    GET /v1/results full JSON bodies
//	ServingWarmFetchETag same fetch replaying the ETag (304, no body)
//	ServingSSEFanout    GET /v1/jobs/{id}/stream replayed end to end
//
// Each benchmark line reports mean latency as ns/op plus req/s, p50-ms
// and p99-ms, with the worker count as the customary "-N" suffix:
//
//	BenchmarkServingWarmFetch-64  120000  82000 ns/op  12100 req/s  4.10 p50-ms  11.30 p99-ms
//
// Pipe the output through `benchjson -out BENCH_7.json` to snapshot or
// `benchjson -baseline BENCH_7.json` to gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"clustersim/client"
	"clustersim/internal/engine"
	"clustersim/internal/store"
)

// warmBatch is the job set every benchmark serves from: one spec per
// steering kind the paper compares, all on the cheapest simpoint.
func warmBatch(uops int) []engine.JobSpec {
	kinds := []engine.SetupSpec{
		{Kind: "OP", NumClusters: 2},
		{Kind: "OB", NumClusters: 2},
		{Kind: "RHOP", NumClusters: 2},
		{Kind: "VC", NumClusters: 2, NumVC: 2},
		{Kind: "OP", NumClusters: 4},
		{Kind: "VC", NumClusters: 2, NumVC: 4},
	}
	specs := make([]engine.JobSpec, len(kinds))
	for i, k := range kinds {
		specs[i] = engine.JobSpec{
			Simpoint: "gzip-1",
			Setup:    k,
			Opts:     engine.OptionsSpec{NumUops: uops},
		}
	}
	return specs
}

// result aggregates one benchmark's measured phase.
type result struct {
	requests  int
	elapsed   time.Duration
	latencies []time.Duration // merged across workers, unsorted
}

func (r *result) reqPerSec() float64 { return float64(r.requests) / r.elapsed.Seconds() }

func (r *result) meanNs() float64 {
	if len(r.latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range r.latencies {
		sum += l
	}
	return float64(sum.Nanoseconds()) / float64(len(r.latencies))
}

// percentileMs reports the p-th percentile latency in milliseconds;
// latencies must be sorted first.
func (r *result) percentileMs(p float64) float64 {
	if len(r.latencies) == 0 {
		return 0
	}
	idx := int(p * float64(len(r.latencies)-1))
	return float64(r.latencies[idx].Nanoseconds()) / 1e6
}

// run drives `clients` workers calling one request repeatedly for the
// given duration, collecting per-request latency. The request callback
// returns an error to abort the whole benchmark (a serving bug, not a
// measurement).
func run(clients int, duration time.Duration, req func(worker int) error) (*result, error) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		lats     = make([][]time.Duration, clients)
	)
	stop := make(chan struct{})
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				if err := req(w); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				lats[w] = append(lats[w], time.Since(t0))
			}
		}(w)
	}
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	res := &result{elapsed: time.Since(start)}
	for _, l := range lats {
		res.requests += len(l)
		res.latencies = append(res.latencies, l...)
	}
	sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })
	return res, nil
}

func report(name string, clients int, r *result) {
	fmt.Printf("Benchmark%s-%d \t%8d\t%12.0f ns/op\t%12.0f req/s\t%10.2f p50-ms\t%10.2f p99-ms\n",
		name, clients, r.requests, r.meanNs(), r.reqPerSec(),
		r.percentileMs(0.50), r.percentileMs(0.99))
}

// httpGet issues one GET with optional headers, drains the body, and
// checks the status.
func httpGet(hc *http.Client, token, u string, hdr map[string]string, wantStatus int) error {
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != wantStatus {
		// A server predating the conditional-request protocol ignores
		// If-None-Match and sends the full 200 body; the benchmark still
		// measures it (that contrast is the point of the before block).
		if wantStatus == http.StatusNotModified && resp.StatusCode == http.StatusOK {
			return nil
		}
		return fmt.Errorf("%s: status %d, want %d", u, resp.StatusCode, wantStatus)
	}
	return nil
}

func main() {
	var (
		base     = flag.String("url", "http://127.0.0.1:8080", "clusterd base URL")
		token    = flag.String("token", "", "bearer token (when the server requires one)")
		clients  = flag.Int("clients", 64, "concurrent workers per benchmark")
		duration = flag.Duration("duration", 3*time.Second, "measured time per benchmark")
		uops     = flag.Int("uops", 20000, "simulated uops per warm-up job")
	)
	flag.Parse()

	ctx := context.Background()
	cl, err := client.New(*base, client.WithToken(*token))
	if err != nil {
		fatal(err)
	}
	if err := cl.Health(ctx); err != nil {
		fatal(fmt.Errorf("server not reachable: %w", err))
	}

	// Warm up: simulate the batch once; every measured request below is
	// then a pure serving-path operation.
	specs := warmBatch(*uops)
	sub, err := cl.Submit(ctx, specs)
	if err != nil {
		fatal(err)
	}
	for {
		status, err := cl.Status(ctx, sub.ID)
		if err != nil {
			fatal(err)
		}
		if status.Done {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	keys := sub.Keys
	if len(keys) == 0 {
		fatal(fmt.Errorf("warm-up submission returned no keys"))
	}
	fmt.Fprintf(os.Stderr, "loadgen: warm batch of %d jobs done, measuring %d clients × %s per benchmark\n",
		len(keys), *clients, *duration)

	// All measured traffic shares the tuned transport — the same pooling
	// the fleet and client SDK use in production.
	hc := &http.Client{Transport: client.DefaultTransport}

	submitBody, err := submitJSON(specs)
	if err != nil {
		fatal(err)
	}
	benches := []struct {
		name string
		req  func(worker int) error
	}{
		{"ServingSubmitWarm", func(w int) error {
			req, err := http.NewRequest(http.MethodPost, *base+"/v1/jobs", strings.NewReader(submitBody))
			if err != nil {
				return err
			}
			req.Header.Set("Content-Type", "application/json")
			if *token != "" {
				req.Header.Set("Authorization", "Bearer "+*token)
			}
			resp, err := hc.Do(req)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusAccepted {
				return fmt.Errorf("submit: status %d", resp.StatusCode)
			}
			return nil
		}},
		{"ServingWarmFetch", func(w int) error {
			key := keys[w%len(keys)]
			return httpGet(hc, *token, *base+"/v1/results?key="+url.QueryEscape(key), nil, http.StatusOK)
		}},
		{"ServingWarmFetchETag", func(w int) error {
			key := keys[w%len(keys)]
			hdr := map[string]string{"If-None-Match": `"` + store.Addr(key) + `"`}
			return httpGet(hc, *token, *base+"/v1/results?key="+url.QueryEscape(key), hdr, http.StatusNotModified)
		}},
		{"ServingSSEFanout", func(w int) error {
			return streamAll(hc, *token, *base, sub.ID, len(keys))
		}},
	}

	for _, b := range benches {
		res, err := run(*clients, *duration, b.req)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", b.name, err))
		}
		report(b.name, *clients, res)
	}
}

// submitJSON renders the warm batch as a /v1/jobs request body.
func submitJSON(specs []engine.JobSpec) (string, error) {
	var sb strings.Builder
	sb.WriteString(`{"jobs":[`)
	for i, s := range specs {
		if i > 0 {
			sb.WriteByte(',')
		}
		blob, err := json.Marshal(s)
		if err != nil {
			return "", err
		}
		sb.Write(blob)
	}
	sb.WriteString(`]}`)
	return sb.String(), nil
}

// streamAll opens one SSE connection and reads until the done event,
// verifying the expected number of result frames arrived.
func streamAll(hc *http.Client, token, base, id string, want int) error {
	req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("stream: status %d", resp.StatusCode)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if got := strings.Count(string(blob), "event: result"); got != want {
		return fmt.Errorf("stream: %d result events, want %d", got, want)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
