// Command loadgen drives a live clusterd with warm-cache serving traffic
// and reports throughput and latency in `go test -bench` line format, so
// cmd/benchjson can snapshot and gate the serving path exactly like the
// core hot loop.
//
// The run has two halves. A warm-up phase submits a small batch through
// the client SDK and waits for completion, so every later request hits
// results that already exist. The measured phase then hammers four
// serving paths with -clients concurrent workers for -duration each:
//
//	ServingSubmitWarm   POST /v1/jobs resubmitting the warm batch
//	                    (served from the result store, no simulation)
//	ServingWarmFetch    GET /v1/results full JSON bodies
//	ServingWarmFetchETag same fetch replaying the ETag (304, no body)
//	ServingSSEFanout    GET /v1/jobs/{id}/stream replayed end to end
//
// Each benchmark line reports mean latency as ns/op plus req/s, p50-ms
// and p99-ms, with the worker count as the customary "-N" suffix:
//
//	BenchmarkServingWarmFetch-64  120000  82000 ns/op  12100 req/s  4.10 p50-ms  11.30 p99-ms
//
// Pipe the output through `benchjson -out BENCH_7.json` to snapshot or
// `benchjson -baseline BENCH_7.json` to gate.
//
// Each phase is bracketed by a /metrics scrape: the delta of the server's
// clusterd_http_request_seconds histogram over the phase is cross-checked
// against the client-observed percentiles, and a >2× divergence is warned
// on stderr (stdout stays benchjson-parseable) — catching time spent
// outside the handler, like transport queueing or connection churn.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"clustersim/client"
	"clustersim/internal/engine"
	"clustersim/internal/obs"
	"clustersim/internal/store"
)

// warmBatch is the job set every benchmark serves from: one spec per
// steering kind the paper compares, all on the cheapest simpoint.
func warmBatch(uops int) []engine.JobSpec {
	kinds := []engine.SetupSpec{
		{Kind: "OP", NumClusters: 2},
		{Kind: "OB", NumClusters: 2},
		{Kind: "RHOP", NumClusters: 2},
		{Kind: "VC", NumClusters: 2, NumVC: 2},
		{Kind: "OP", NumClusters: 4},
		{Kind: "VC", NumClusters: 2, NumVC: 4},
	}
	specs := make([]engine.JobSpec, len(kinds))
	for i, k := range kinds {
		specs[i] = engine.JobSpec{
			Simpoint: "gzip-1",
			Setup:    k,
			Opts:     engine.OptionsSpec{NumUops: uops},
		}
	}
	return specs
}

// result aggregates one benchmark's measured phase.
type result struct {
	requests  int
	elapsed   time.Duration
	latencies []time.Duration // merged across workers, unsorted
}

func (r *result) reqPerSec() float64 { return float64(r.requests) / r.elapsed.Seconds() }

func (r *result) meanNs() float64 {
	if len(r.latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range r.latencies {
		sum += l
	}
	return float64(sum.Nanoseconds()) / float64(len(r.latencies))
}

// percentileMs reports the p-th percentile latency in milliseconds;
// latencies must be sorted first.
func (r *result) percentileMs(p float64) float64 {
	if len(r.latencies) == 0 {
		return 0
	}
	idx := int(p * float64(len(r.latencies)-1))
	return float64(r.latencies[idx].Nanoseconds()) / 1e6
}

// run drives `clients` workers calling one request repeatedly for the
// given duration, collecting per-request latency. The request callback
// returns an error to abort the whole benchmark (a serving bug, not a
// measurement).
func run(clients int, duration time.Duration, req func(worker int) error) (*result, error) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		lats     = make([][]time.Duration, clients)
	)
	stop := make(chan struct{})
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				if err := req(w); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				lats[w] = append(lats[w], time.Since(t0))
			}
		}(w)
	}
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	res := &result{elapsed: time.Since(start)}
	for _, l := range lats {
		res.requests += len(l)
		res.latencies = append(res.latencies, l...)
	}
	sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })
	return res, nil
}

func report(name string, clients int, r *result) {
	fmt.Printf("Benchmark%s-%d \t%8d\t%12.0f ns/op\t%12.0f req/s\t%10.2f p50-ms\t%10.2f p99-ms\n",
		name, clients, r.requests, r.meanNs(), r.reqPerSec(),
		r.percentileMs(0.50), r.percentileMs(0.99))
}

// httpGet issues one GET with optional headers, drains the body, and
// checks the status.
func httpGet(hc *http.Client, token, u string, hdr map[string]string, wantStatus int) error {
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != wantStatus {
		// A server predating the conditional-request protocol ignores
		// If-None-Match and sends the full 200 body; the benchmark still
		// measures it (that contrast is the point of the before block).
		if wantStatus == http.StatusNotModified && resp.StatusCode == http.StatusOK {
			return nil
		}
		return fmt.Errorf("%s: status %d, want %d", u, resp.StatusCode, wantStatus)
	}
	return nil
}

func main() {
	var (
		base     = flag.String("url", "http://127.0.0.1:8080", "clusterd base URL")
		token    = flag.String("token", "", "bearer token (when the server requires one)")
		clients  = flag.Int("clients", 64, "concurrent workers per benchmark")
		duration = flag.Duration("duration", 3*time.Second, "measured time per benchmark")
		uops     = flag.Int("uops", 20000, "simulated uops per warm-up job")
		overldFl = flag.Bool("overload", false, "run the two-tenant overload demo instead of the serving benchmarks (self-asserting; start the server with -quota/-rate)")
		flood    = flag.Int("flood", 16, "bulk-tenant flood workers in -overload mode")
		samples  = flag.Int("samples", 30, "interactive latency samples per overload phase")
	)
	flag.Parse()

	ctx := context.Background()
	cl, err := client.New(*base, client.WithToken(*token))
	if err != nil {
		fatal(err)
	}
	if err := cl.Health(ctx); err != nil {
		fatal(fmt.Errorf("server not reachable: %w", err))
	}
	if *overldFl {
		os.Exit(overload(&http.Client{Transport: client.DefaultTransport}, *base, *token, *uops, *flood, *samples))
	}

	// Warm up: simulate the batch once; every measured request below is
	// then a pure serving-path operation.
	specs := warmBatch(*uops)
	sub, err := cl.Submit(ctx, specs)
	if err != nil {
		fatal(err)
	}
	for {
		status, err := cl.Status(ctx, sub.ID)
		if err != nil {
			fatal(err)
		}
		if status.Done {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	keys := sub.Keys
	if len(keys) == 0 {
		fatal(fmt.Errorf("warm-up submission returned no keys"))
	}
	fmt.Fprintf(os.Stderr, "loadgen: warm batch of %d jobs done, measuring %d clients × %s per benchmark\n",
		len(keys), *clients, *duration)

	// All measured traffic shares the tuned transport — the same pooling
	// the fleet and client SDK use in production.
	hc := &http.Client{Transport: client.DefaultTransport}

	submitBody, err := submitJSON(specs)
	if err != nil {
		fatal(err)
	}
	benches := []struct {
		name  string
		route string // server-side histogram route label this bench drives
		req   func(worker int) error
	}{
		{"ServingSubmitWarm", "/v1/jobs", func(w int) error {
			req, err := http.NewRequest(http.MethodPost, *base+"/v1/jobs", strings.NewReader(submitBody))
			if err != nil {
				return err
			}
			req.Header.Set("Content-Type", "application/json")
			if *token != "" {
				req.Header.Set("Authorization", "Bearer "+*token)
			}
			resp, err := hc.Do(req)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusAccepted {
				return fmt.Errorf("submit: status %d", resp.StatusCode)
			}
			return nil
		}},
		{"ServingWarmFetch", "/v1/results", func(w int) error {
			key := keys[w%len(keys)]
			return httpGet(hc, *token, *base+"/v1/results?key="+url.QueryEscape(key), nil, http.StatusOK)
		}},
		{"ServingWarmFetchETag", "/v1/results", func(w int) error {
			key := keys[w%len(keys)]
			hdr := map[string]string{"If-None-Match": `"` + store.Addr(key) + `"`}
			return httpGet(hc, *token, *base+"/v1/results?key="+url.QueryEscape(key), hdr, http.StatusNotModified)
		}},
		{"ServingSSEFanout", "/v1/jobs/{id}/stream", func(w int) error {
			return streamAll(hc, *token, *base, sub.ID, len(keys))
		}},
	}

	// Bracket each phase with a /metrics scrape: the delta between the two
	// scrapes is the server's own view of exactly the traffic the phase
	// generated, and a client/server percentile divergence localizes where
	// the time went (in the handler, or outside it). A scrape failure —
	// e.g. a server predating the histogram families — disables the
	// cross-check with one warning rather than failing the benchmark.
	scrapesOK := true
	scrape := func() map[string]obs.Snapshot {
		if !scrapesOK {
			return nil
		}
		m, err := scrapeRouteHistograms(hc, *token, *base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: /metrics scrape failed, skipping server-side cross-checks: %v\n", err)
			scrapesOK = false
			return nil
		}
		return m
	}

	for _, b := range benches {
		before := scrape()
		res, err := run(*clients, *duration, b.req)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", b.name, err))
		}
		report(b.name, *clients, res)
		if after := scrape(); before != nil && after != nil {
			crossCheck(b.name, b.route, res, after[b.route].Sub(before[b.route]))
		}
	}
}

// crossCheck compares the phase's client-observed percentiles against the
// server's histogram delta for the route the phase drove, warning on >2×
// divergence — the signal that request time is going somewhere other than
// the handler (transport queueing, connection setup, reconnects). Server
// quantiles are bucket-interpolated, so sub-millisecond differences are
// quantization, not divergence, and are not flagged.
func crossCheck(name, route string, r *result, server obs.Snapshot) {
	if server.Count == 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %s: server recorded no requests on route %s during the phase\n", name, route)
		return
	}
	for _, q := range []struct {
		label string
		p     float64
	}{{"p50", 0.50}, {"p99", 0.99}} {
		clientMs := r.percentileMs(q.p)
		serverMs := server.Quantile(q.p) * 1e3
		hi, lo := clientMs, serverMs
		if hi < lo {
			hi, lo = lo, hi
		}
		if hi > 2*lo && hi-lo > 1.0 {
			fmt.Fprintf(os.Stderr, "loadgen: WARNING %s %s diverges >2x: client %.2fms vs server %.2fms (route %s)\n",
				name, q.label, clientMs, serverMs, route)
		}
	}
}

// scrapeRouteHistograms fetches /metrics and folds the
// clusterd_http_request_seconds family into one cumulative snapshot per
// route, summed across status codes.
func scrapeRouteHistograms(hc *http.Client, token, base string) (map[string]obs.Snapshot, error) {
	req, err := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	return parseRouteHistograms(string(blob)), nil
}

// parseRouteHistograms extracts the clusterd_http_request_seconds_bucket
// series from Prometheus exposition text. Bucket counts arrive cumulative
// per (route, code) series; summing the same le across codes keeps them
// cumulative, so the per-route fold is a valid Snapshot.
func parseRouteHistograms(text string) map[string]obs.Snapshot {
	type acc struct {
		byLe map[float64]int64
		inf  int64
	}
	accs := map[string]*acc{}
	const fam = "clusterd_http_request_seconds_bucket{"
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, fam) {
			continue
		}
		// The label-set closer is the last '}' on the line: label values
		// may contain braces ("/v1/jobs/{id}/stream") but the sample value
		// after them never does.
		end := strings.LastIndex(line, "}")
		if end < 0 {
			continue
		}
		val, err := strconv.ParseInt(strings.TrimSpace(line[end+1:]), 10, 64)
		if err != nil {
			continue
		}
		var route, le string
		for _, kv := range strings.Split(line[len(fam):end], ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				continue
			}
			v = strings.Trim(v, `"`)
			switch k {
			case "route":
				route = v
			case "le":
				le = v
			}
		}
		if route == "" || le == "" {
			continue
		}
		a := accs[route]
		if a == nil {
			a = &acc{byLe: map[float64]int64{}}
			accs[route] = a
		}
		if le == "+Inf" {
			a.inf += val
			continue
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			continue
		}
		a.byLe[bound] += val
	}
	out := make(map[string]obs.Snapshot, len(accs))
	for route, a := range accs {
		s := obs.Snapshot{Bounds: make([]float64, 0, len(a.byLe))}
		for b := range a.byLe {
			s.Bounds = append(s.Bounds, b)
		}
		sort.Float64s(s.Bounds)
		s.Counts = make([]int64, len(s.Bounds)+1)
		for i, b := range s.Bounds {
			s.Counts[i] = a.byLe[b]
		}
		s.Counts[len(s.Bounds)] = a.inf
		s.Count = a.inf
		out[route] = s
	}
	return out
}

// submitJSON renders the warm batch as a /v1/jobs request body.
func submitJSON(specs []engine.JobSpec) (string, error) {
	var sb strings.Builder
	sb.WriteString(`{"jobs":[`)
	for i, s := range specs {
		if i > 0 {
			sb.WriteByte(',')
		}
		blob, err := json.Marshal(s)
		if err != nil {
			return "", err
		}
		sb.Write(blob)
	}
	sb.WriteString(`]}`)
	return sb.String(), nil
}

// streamAll opens one SSE connection and reads until the done event,
// verifying the expected number of result frames arrived.
func streamAll(hc *http.Client, token, base, id string, want int) error {
	req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("stream: status %d", resp.StatusCode)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if got := strings.Count(string(blob), "event: result"); got != want {
		return fmt.Errorf("stream: %d result events, want %d", got, want)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
