// Command steerbench regenerates the paper's tables and figures on the
// simulated substrate and prints the reports. Every experiment submits its
// runs to one shared simulation engine, so identical (simpoint, setup)
// simulations across figures execute exactly once per invocation — and,
// with -cachedir, at most once across invocations: completed results are
// persisted to a content-addressed disk store and later runs are served
// from it without simulating.
//
// Usage:
//
//	steerbench                   # everything, full suite
//	steerbench -exp fig5         # one experiment
//	steerbench -quick -uops 20000
//	steerbench -out results.txt  # report + cache-stats footer to a file
//	steerbench -cachedir ~/.cache/steerbench   # persist results on disk
//	steerbench -progress         # live phase/ETA progress on stderr
//	steerbench -remote http://host:8080        # execute on one clusterd worker
//	steerbench -remote http://h1:8080,http://h2:8080   # shard across a fleet
//	steerbench -cpuprofile cpu.prof -memprofile mem.prof   # profile the run
//	steerbench -trace-out run.json               # Chrome-trace timeline of the run
//
// Experiments: table1 table2 table3 fig5 fig6 fig7 policyspace ablation all
//
// -cpuprofile and -memprofile write pprof profiles of the whole run
// (inspect with `go tool pprof`); profiles flush on clean exits only. The
// "# engine:" footer records cache effectiveness including the compressed
// trace cache's peak occupancy and compression ratio, so cache-sizing
// regressions show up in CI report diffs. -trace-out records a span
// timeline of the whole suite — per-stage engine flights for local runs,
// per-batch submit/stream/fetch flights for remote ones — as Chrome
// trace-event JSON, loadable in chrome://tracing or Perfetto.
//
// Reports written to stdout/-out are deterministic (timing goes to
// stderr), so two invocations over the same cache directory produce
// byte-identical reports. With -remote, simulations execute on a clusterd
// instance through the client SDK instead of in-process; the report is
// byte-identical to a local run, and the daemon's content-addressed store
// dedups repeated invocations across every client that ever submitted.
// With several comma-separated URLs the batch shards across the fleet by
// consistent hash of each job's result key, and a worker lost mid-run is
// survived: its unfinished jobs re-shard onto the remaining workers (the
// report stays byte-identical). -readmit re-probes dead workers and
// re-admits the recovered ones mid-suite; -coordinator converges
// membership with other concurrent runners through a clusterd started
// with -coordinator. Fleet runs append a "# fleet:" footer (membership
// epoch plus per-worker state) next to the "# engine:" one — consumers
// diffing saved reports strip the "# "-prefixed lines.
//
// Ctrl-C cancels in-flight simulations and exits cleanly with status 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"
	"time"

	"clustersim"
	"clustersim/client"
	"clustersim/fleet"
	"clustersim/internal/experiments"
	"clustersim/internal/obs"
)

// splitURLs parses the -remote value: a comma-separated URL list, blank
// entries ignored so trailing commas don't create phantom workers.
func splitURLs(remote string) []string {
	var urls []string
	for _, u := range strings.Split(remote, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}

// progressMeter renders the live stderr progress line: the experiment
// phase currently submitting jobs, the engine-lifetime completed/submitted
// counters, and an ETA extrapolated from the observed per-job latency.
type progressMeter struct {
	mu    sync.Mutex
	start time.Time
	phase string
}

func newProgressMeter() *progressMeter { return &progressMeter{start: time.Now()} }

func (p *progressMeter) setPhase(name string) {
	p.mu.Lock()
	p.phase = name
	p.mu.Unlock()
}

func (p *progressMeter) print(done, total int, label string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	eta := "--"
	if done > 0 && done < total {
		perJob := time.Since(p.start) / time.Duration(done)
		eta = (time.Duration(total-done) * perJob).Round(time.Second).String()
	}
	fmt.Fprintf(os.Stderr, "\r[%s %d/%d eta %s] %-40.40s", p.phase, done, total, eta, label)
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1|table2|table3|fig5|fig6|fig7|policyspace|ablation|all")
		uops     = flag.Int("uops", 120_000, "dynamic micro-ops per simulation point")
		quick    = flag.Bool("quick", false, "use the reduced 8-point suite")
		par      = flag.Int("parallel", 0, "concurrent simulations (0 = all cores)")
		out      = flag.String("out", "", "also write the report to this file")
		csvDir   = flag.String("csvdir", "", "write per-figure CSV files into this directory")
		cacheDir = flag.String("cachedir", "", "persist completed results in this directory (reruns skip finished simulations; with -remote it only backs locally executed fallback jobs)")
		cacheMax = flag.Int64("cachemax", 0, "bound the -cachedir store to this many bytes (0 = unbounded)")
		progress = flag.Bool("progress", false, "print live phase/ETA progress and engine cache stats to stderr")
		remote   = flag.String("remote", "", "execute simulations remotely: one clusterd URL, or a comma-separated list to shard across a fleet; jobs that cannot travel run locally")
		token    = flag.String("token", "", "bearer token for clusterd workers started with -token")
		compress = flag.Bool("compress", false, "gzip result blobs in the -cachedir store (old uncompressed blobs stay readable)")
		steal    = flag.Int("steal", 0, "with a multi-worker -remote: let idle workers duplicate up to this many straggler jobs per batch (first result wins)")
		coordURL = flag.String("coordinator", "", "with a multi-worker -remote: share one membership view with other runners through this clusterd -coordinator URL")
		readmit  = flag.Duration("readmit", 0, "with a multi-worker -remote: re-probe dead workers at this interval and re-admit the ones that recovered (0 = leave dead workers dead)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (pprof format; profiles are flushed on clean exit)")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file after the run (pprof format)")
		traceOut = flag.String("trace-out", "", "write a Chrome trace-event JSON timeline of the whole run to this file (open in chrome://tracing or Perfetto)")
	)
	flag.Parse()

	// Profiling hooks for hot-loop work: profiles flush on a normal exit
	// (error and interrupt paths skip them — profile complete runs).
	finishProfiles := func() {}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		finishProfiles = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if *memProf != "" {
		stopCPU := finishProfiles
		finishProfiles = func() {
			stopCPU()
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		// After the first signal, restore default handling so a second
		// ctrl-C force-kills even if shutdown stalls somewhere.
		<-ctx.Done()
		stop()
	}()

	writeCSV := func(name, content string) {
		if *csvDir == "" {
			return
		}
		path := *csvDir + "/" + name
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
			os.Exit(1)
		}
	}

	// -trace-out traces the whole run: the local engine records per-stage
	// flights directly, remote runners record one client-side flight per
	// batch (submit/stream/fetch spans), and everything lands in one
	// Chrome-trace timeline. The capacity is sized for a full suite; the
	// ring evicts the oldest flights beyond it rather than failing.
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(16384)
	}

	engOpts := clustersim.EngineOptions{Parallelism: *par, Tracer: tracer}
	if *cacheDir != "" {
		open := clustersim.OpenDiskStore
		if *compress {
			open = clustersim.OpenCompressedDiskStore
		}
		st, err := open(*cacheDir, *cacheMax)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		engOpts.ResultStore = st
	}
	meter := newProgressMeter()
	if *progress && *remote == "" {
		engOpts.Progress = meter.print
	}
	eng := clustersim.NewEngine(engOpts)

	// The runner is the execution seam: the local engine by default, a
	// clusterd client when -remote is one URL, a sharded fleet runner when
	// it is a comma-separated list (with the local engine as the fallback
	// for jobs that have no declarative wire form, e.g. the machine-tweak
	// ablations). Everything downstream is runner-agnostic.
	var runner clustersim.Runner = eng
	var fl *fleet.Runner // non-nil when sharding, for the fleet footer
	urls := splitURLs(*remote)
	if *remote != "" && len(urls) == 0 {
		// "-remote ," (e.g. from unset env vars) must not silently run the
		// whole suite locally with the remote flags ignored.
		fmt.Fprintf(os.Stderr, "steerbench: -remote %q contains no URLs\n", *remote)
		os.Exit(1)
	}
	if len(urls) == 1 {
		var copts []client.Option
		if *token != "" {
			copts = append(copts, client.WithToken(*token))
		}
		c, err := client.New(urls[0], copts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := c.Health(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "steerbench: clusterd at %s unreachable: %v\n", urls[0], err)
			os.Exit(1)
		}
		// /healthz is deliberately auth-exempt, so verify the credential
		// with an authenticated round trip — a wrong -token should fail
		// here, not as per-job errors mid-run (fleet.New does the same).
		if _, err := c.Stats(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "steerbench: clusterd at %s refused: %v\n", urls[0], err)
			os.Exit(1)
		}
		ropts := []client.RunnerOption{client.WithFallback(eng)}
		if *progress {
			ropts = append(ropts, client.WithProgress(meter.print))
		}
		if tracer != nil {
			ropts = append(ropts, client.WithRunnerTracer(tracer))
		}
		runner = client.NewRunner(c, ropts...)
	} else if len(urls) > 1 {
		fopts := []fleet.Option{
			fleet.WithFallback(eng),
			fleet.WithLog(func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			}),
		}
		if *token != "" {
			fopts = append(fopts, fleet.WithToken(*token))
		}
		if *steal > 0 {
			fopts = append(fopts, fleet.WithSteal(*steal))
		}
		if *progress {
			fopts = append(fopts, fleet.WithProgress(meter.print))
		}
		if tracer != nil {
			fopts = append(fopts, fleet.WithRunnerOptions(client.WithRunnerTracer(tracer)))
		}
		if *coordURL != "" {
			fopts = append(fopts, fleet.WithCoordinator(*coordURL))
		}
		if *readmit > 0 {
			fopts = append(fopts, fleet.WithReadmit(*readmit))
		}
		var err error
		fl, err = fleet.New(urls, fopts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "steerbench: %v\n", err)
			os.Exit(1)
		}
		defer fl.Close()
		fmt.Fprintf(os.Stderr, "steerbench: sharding across %d clusterd workers\n", len(urls))
		runner = fl
	}
	opt := clustersim.ExperimentOptions{
		NumUops: *uops, Quick: *quick, Parallelism: *par,
		Runner: runner, Context: ctx,
	}

	var sink io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		sink = io.MultiWriter(os.Stdout, f)
	}

	run := func(name string, fn func() (string, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		meter.setPhase(name)
		start := time.Now()
		text, err := fn()
		if *progress {
			fmt.Fprint(os.Stderr, "\r\033[K") // clear the progress line
		}
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "%s: interrupted\n", name)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintln(sink, text)
		// Timing is nondeterministic, so it goes to stderr only: the
		// report stream stays byte-identical across (cached) reruns.
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table2", func() (string, error) { return clustersim.Table2(), nil })
	run("table3", func() (string, error) { return clustersim.Table3(), nil })
	run("table1", func() (string, error) {
		r, err := clustersim.Table1(opt)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("fig5", func() (string, error) {
		r, err := clustersim.Fig5(opt)
		if err != nil {
			return "", err
		}
		writeCSV("fig5.csv", r.CSV())
		return r.Render(), nil
	})
	run("fig6", func() (string, error) {
		r, err := clustersim.Fig6(opt)
		if err != nil {
			return "", err
		}
		writeCSV("fig6.csv", r.CSV())
		return r.Render(), nil
	})
	run("fig7", func() (string, error) {
		r, err := clustersim.Fig7(opt)
		if err != nil {
			return "", err
		}
		writeCSV("fig7.csv", r.CSV())
		return r.Render(), nil
	})
	run("policyspace", func() (string, error) {
		r, err := experiments.PolicySpace(opt)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("ablation", func() (string, error) {
		var b strings.Builder
		chain, err := experiments.AblationChainLen(opt)
		if err != nil {
			return "", err
		}
		b.WriteString(chain.Render())
		b.WriteByte('\n')
		nvc, err := experiments.AblationNumVC(opt)
		if err != nil {
			return "", err
		}
		b.WriteString(nvc.Render())
		b.WriteByte('\n')
		lats, err := experiments.AblationLinkLatency(opt)
		if err != nil {
			return "", err
		}
		for _, r := range lats {
			b.WriteString(r.Render())
			b.WriteByte('\n')
		}
		iqs, err := experiments.AblationIQSize(opt)
		if err != nil {
			return "", err
		}
		for _, r := range iqs {
			b.WriteString(r.Render())
			b.WriteByte('\n')
		}
		scopes, err := experiments.AblationRegionScope(opt)
		if err != nil {
			return "", err
		}
		for _, r := range scopes {
			b.WriteString(r.Render())
			b.WriteByte('\n')
		}
		sos, err := experiments.AblationStallOverSteer(opt)
		if err != nil {
			return "", err
		}
		b.WriteString(sos.Render())
		b.WriteByte('\n')
		cbw, err := experiments.AblationCopyBandwidth(opt)
		if err != nil {
			return "", err
		}
		for _, r := range cbw {
			b.WriteString(r.Render())
			b.WriteByte('\n')
		}
		vcc, err := experiments.AblationVCComm(opt)
		if err != nil {
			return "", err
		}
		for _, r := range vcc {
			b.WriteString(r.Render())
			b.WriteByte('\n')
		}
		topo, err := experiments.AblationTopology(opt)
		if err != nil {
			return "", err
		}
		for _, r := range topo {
			b.WriteString(r.Render())
			b.WriteByte('\n')
		}
		pf, err := experiments.AblationPrefetch(opt)
		if err != nil {
			return "", err
		}
		b.WriteString(pf.Render())
		return b.String(), nil
	})

	// Cache effectiveness: always on stderr with -progress, and recorded
	// in the saved report whenever one is being written ("# "-prefixed so
	// consumers — and the CI byte-identity check — can strip it; the
	// counters legitimately differ between a cold and a warm run).
	report := experiments.EngineReport(runner.Stats())
	if *progress {
		fmt.Fprintln(os.Stderr, report)
	}
	if *out != "" {
		fmt.Fprintf(sink, "# %s\n", report)
	}
	// Fleet runs also record the control plane: the membership epoch, the
	// lifecycle counters, and each worker's state — so a saved report shows
	// which workers actually served it and why any were excluded.
	if fl != nil {
		footer := fleetFooter(fl.FleetStats())
		if *progress {
			fmt.Fprint(os.Stderr, footer)
		}
		if *out != "" {
			fmt.Fprint(sink, footer)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		werr := tracer.WriteChrome(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *traceOut, werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "# trace: wrote %d flights to %s\n", len(tracer.Records()), *traceOut)
	}
	finishProfiles()
}

// fleetFooter renders the "# fleet:" report footer: one summary line and
// one line per worker the fleet has ever admitted.
func fleetFooter(fs fleet.Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# fleet: epoch %d, readmissions %d, drain-migrated %d, backfilled %d\n",
		fs.Epoch, fs.Readmissions, fs.DrainMigrated, fs.Backfilled)
	for _, m := range fs.Members {
		fmt.Fprintf(&b, "# fleet: worker %s %s (epoch %d)", m.URL, m.State, m.Epoch)
		if m.LastError != "" {
			fmt.Fprintf(&b, " last error: %s", m.LastError)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
