// Command steerbench regenerates the paper's tables and figures on the
// simulated substrate and prints the reports. Every experiment submits its
// runs to one shared simulation engine, so identical (simpoint, setup)
// simulations across figures execute exactly once per invocation.
//
// Usage:
//
//	steerbench                   # everything, full suite
//	steerbench -exp fig5         # one experiment
//	steerbench -quick -uops 20000
//	steerbench -out results.txt
//	steerbench -progress         # live job progress + cache stats on stderr
//
// Experiments: table1 table2 table3 fig5 fig6 fig7 policyspace ablation all
//
// Ctrl-C cancels in-flight simulations and exits cleanly with status 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"clustersim"
	"clustersim/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1|table2|table3|fig5|fig6|fig7|policyspace|ablation|all")
		uops     = flag.Int("uops", 120_000, "dynamic micro-ops per simulation point")
		quick    = flag.Bool("quick", false, "use the reduced 8-point suite")
		par      = flag.Int("parallel", 0, "concurrent simulations (0 = all cores)")
		out      = flag.String("out", "", "also write the report to this file")
		csvDir   = flag.String("csvdir", "", "write per-figure CSV files into this directory")
		progress = flag.Bool("progress", false, "print live job progress and engine cache stats to stderr")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		// After the first signal, restore default handling so a second
		// ctrl-C force-kills even if shutdown stalls somewhere.
		<-ctx.Done()
		stop()
	}()

	writeCSV := func(name, content string) {
		if *csvDir == "" {
			return
		}
		path := *csvDir + "/" + name
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
			os.Exit(1)
		}
	}

	engOpts := clustersim.EngineOptions{Parallelism: *par}
	if *progress {
		engOpts.Progress = func(done, total int, label string) {
			fmt.Fprintf(os.Stderr, "\r[%d/%d] %-48.48s", done, total, label)
		}
	}
	eng := clustersim.NewEngine(engOpts)
	opt := clustersim.ExperimentOptions{
		NumUops: *uops, Quick: *quick, Parallelism: *par,
		Engine: eng, Context: ctx,
	}

	var sink io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		sink = io.MultiWriter(os.Stdout, f)
	}

	run := func(name string, fn func() (string, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		text, err := fn()
		if *progress {
			fmt.Fprint(os.Stderr, "\r\033[K") // clear the progress line
		}
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "%s: interrupted\n", name)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintln(sink, text)
		fmt.Fprintf(sink, "[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table2", func() (string, error) { return clustersim.Table2(), nil })
	run("table3", func() (string, error) { return clustersim.Table3(), nil })
	run("table1", func() (string, error) {
		r, err := clustersim.Table1(opt)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("fig5", func() (string, error) {
		r, err := clustersim.Fig5(opt)
		if err != nil {
			return "", err
		}
		writeCSV("fig5.csv", r.CSV())
		return r.Render(), nil
	})
	run("fig6", func() (string, error) {
		r, err := clustersim.Fig6(opt)
		if err != nil {
			return "", err
		}
		writeCSV("fig6.csv", r.CSV())
		return r.Render(), nil
	})
	run("fig7", func() (string, error) {
		r, err := clustersim.Fig7(opt)
		if err != nil {
			return "", err
		}
		writeCSV("fig7.csv", r.CSV())
		return r.Render(), nil
	})
	run("policyspace", func() (string, error) {
		r, err := experiments.PolicySpace(opt)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("ablation", func() (string, error) {
		var b strings.Builder
		chain, err := experiments.AblationChainLen(opt)
		if err != nil {
			return "", err
		}
		b.WriteString(chain.Render())
		b.WriteByte('\n')
		nvc, err := experiments.AblationNumVC(opt)
		if err != nil {
			return "", err
		}
		b.WriteString(nvc.Render())
		b.WriteByte('\n')
		lats, err := experiments.AblationLinkLatency(opt)
		if err != nil {
			return "", err
		}
		for _, r := range lats {
			b.WriteString(r.Render())
			b.WriteByte('\n')
		}
		iqs, err := experiments.AblationIQSize(opt)
		if err != nil {
			return "", err
		}
		for _, r := range iqs {
			b.WriteString(r.Render())
			b.WriteByte('\n')
		}
		scopes, err := experiments.AblationRegionScope(opt)
		if err != nil {
			return "", err
		}
		for _, r := range scopes {
			b.WriteString(r.Render())
			b.WriteByte('\n')
		}
		sos, err := experiments.AblationStallOverSteer(opt)
		if err != nil {
			return "", err
		}
		b.WriteString(sos.Render())
		b.WriteByte('\n')
		cbw, err := experiments.AblationCopyBandwidth(opt)
		if err != nil {
			return "", err
		}
		for _, r := range cbw {
			b.WriteString(r.Render())
			b.WriteByte('\n')
		}
		vcc, err := experiments.AblationVCComm(opt)
		if err != nil {
			return "", err
		}
		for _, r := range vcc {
			b.WriteString(r.Render())
			b.WriteByte('\n')
		}
		topo, err := experiments.AblationTopology(opt)
		if err != nil {
			return "", err
		}
		for _, r := range topo {
			b.WriteString(r.Render())
			b.WriteByte('\n')
		}
		pf, err := experiments.AblationPrefetch(opt)
		if err != nil {
			return "", err
		}
		b.WriteString(pf.Render())
		return b.String(), nil
	})

	if *progress {
		fmt.Fprintln(os.Stderr, experiments.EngineReport(eng.Stats()))
	}
}
