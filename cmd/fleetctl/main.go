// Command fleetctl operates a clusterd fleet's control plane: inspect
// membership, drain a worker out of the fleet without losing cache
// affinity, scale up with a pre-warmed newcomer, re-admit recovered
// workers on demand, and observe the fleet live — per-worker latency
// percentiles by route (top) and per-job span trees (trace).
//
// Usage:
//
//	fleetctl -workers http://h1:8080,http://h2:8080 status
//	fleetctl -workers http://h1:8080,http://h2:8080 drain http://h2:8080
//	fleetctl -workers http://h1:8080 add http://h3:8080
//	fleetctl -workers http://h1:8080,http://h2:8080 readmit
//	fleetctl -workers http://h1:8080,http://h2:8080 top
//	fleetctl -workers http://h1:8080,http://h2:8080 trace <trace-id>
//	fleetctl -workers ... -coordinator http://coord:8080 drain http://h2:8080
//
// drain migrates every result blob the departing worker holds to its
// consistent-hash successors before removing it, so the survivors
// inherit its key range warm and nothing re-simulates. add health-checks
// the newcomer and backfills the key ranges it will steal from their
// current owners before announcing it. readmit probes workers the fleet
// marked dead and restores the ones that answer.
//
// top and trace are read-only and tolerate down workers: top prints
// p50/p99 per route for every worker that answers (plus the fleet-wide
// merge), and trace asks each worker in turn for the span tree until
// one of them — the job's owner — has it.
//
// With -coordinator, every transition is compare-and-swapped through the
// shared ring register (a clusterd started with -coordinator), so fleet
// runners pointing at the same register observe the change on their next
// batch — drain a worker here while steerbench runs elsewhere, and the
// run routes around it without duplicating work.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"clustersim/client"
	"clustersim/fleet"
	"clustersim/internal/api"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: fleetctl -workers URL[,URL...] [flags] <command> [arg]

commands:
  status          print the membership view and lifecycle counters
  drain <url>     migrate a worker's results to its ring successors, then remove it
  add <url>       health-check a new worker, backfill its key ranges, then admit it
  readmit         probe dead workers now and re-admit the ones that recovered
  top             print per-worker p50/p99 latency by route, plus the fleet merge
  trace <id>      fetch a job's span tree from whichever worker owns it

flags:
`)
	flag.PrintDefaults()
	os.Exit(2)
}

func newLogger(level, format string) *slog.Logger {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		lvl = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lvl}
	if strings.ToLower(format) == "json" {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts))
}

func main() {
	var (
		workers   = flag.String("workers", "", "comma-separated clusterd worker URLs (the current fleet)")
		coordURL  = flag.String("coordinator", "", "clusterd -coordinator URL: transitions go through the shared ring register")
		token     = flag.String("token", "", "bearer token for workers started with -token")
		timeout   = flag.Duration("timeout", 10*time.Minute, "bound the whole operation (drains move every blob the worker holds)")
		brkTrip   = flag.Int("breaker-trip", 5, "consecutive failures that open a worker's circuit breaker (0 disables)")
		brkCool   = flag.Duration("breaker-cooldown", 5*time.Second, "breaker open -> half-open cooldown")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "log format: text or json")
	)
	flag.Usage = usage
	flag.Parse()
	log := newLogger(*logLevel, *logFormat)

	var urls []string
	for _, u := range strings.Split(*workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 || flag.NArg() == 0 {
		usage()
	}
	cmd, arg := flag.Arg(0), flag.Arg(1)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	copts := []client.Option{client.WithRetries(2)}
	if *token != "" {
		copts = append(copts, client.WithToken(*token))
	}

	// top and trace are read-only observers: they talk to each worker
	// directly instead of going through fleet.New, whose construction
	// health-check would refuse the whole command because one worker is
	// down — exactly when an operator reaches for these.
	switch cmd {
	case "top":
		os.Exit(runTop(ctx, log, urls, copts))
	case "trace":
		if arg == "" {
			usage()
		}
		os.Exit(runTrace(ctx, log, urls, copts, arg))
	}

	fopts := []fleet.Option{
		fleet.WithLog(func(format string, args ...any) {
			log.Info(fmt.Sprintf(format, args...))
		}),
		// Fail fast: fleetctl talks to workers an operator believes are up.
		fleet.WithClientOptions(client.WithRetries(2)),
	}
	if *token != "" {
		fopts = append(fopts, fleet.WithToken(*token))
	}
	if *coordURL != "" {
		fopts = append(fopts, fleet.WithCoordinator(*coordURL))
	}
	if *brkTrip > 0 {
		fopts = append(fopts, fleet.WithBreaker(*brkTrip, *brkCool))
	}
	f, err := fleet.New(urls, fopts...)
	if err != nil {
		fail(log, "fleet construction", err)
	}

	switch cmd {
	case "status":
		// Construction already synced with the coordinator when one is set.
	case "drain":
		if arg == "" {
			usage()
		}
		if err := f.Drain(ctx, arg); err != nil {
			fail(log, "drain "+arg, err)
		}
	case "add":
		if arg == "" {
			usage()
		}
		if err := f.AddWorker(ctx, arg); err != nil {
			fail(log, "add "+arg, err)
		}
	case "readmit":
		f.Readmit(ctx)
	default:
		usage()
	}

	printStatus(f.FleetStats())
}

// Exit statuses scripts can branch on: 1 is a generic failure, 3 means
// the server refused for load (rate limit or quota — retry later), 4
// means a deadline expired server-side.
const (
	exitFailure     = 1
	exitRateLimited = 3
	exitDeadline    = 4
)

// fail reports a command failure and exits with the status mapped from
// the server's stable JSON error code. Overload refusals print the
// parsed Retry-After so scripts (and operators) know when trying again
// is worthwhile.
func fail(log *slog.Logger, op string, err error) {
	var apiErr *api.Error
	if errors.As(err, &apiErr) {
		switch apiErr.Code {
		case api.CodeRateLimited, api.CodeQuotaExceeded:
			log.Error(op+" refused for load", "code", apiErr.Code, "retry_after", apiErr.RetryAfter)
			fmt.Printf("error: %s (retry after %s)\n", apiErr.Code, apiErr.RetryAfter)
			os.Exit(exitRateLimited)
		case api.CodeDeadlineExceeded:
			log.Error(op+" exceeded its deadline", "code", apiErr.Code)
			fmt.Printf("error: %s\n", apiErr.Code)
			os.Exit(exitDeadline)
		}
	}
	log.Error(op+" failed", "err", err)
	os.Exit(exitFailure)
}

func printStatus(fs fleet.Stats) {
	assignable := 0
	for _, m := range fs.Members {
		if m.State == "alive" || m.State == "draining" {
			assignable++
		}
	}
	fmt.Printf("fleet: epoch %d, %d/%d workers assignable, readmissions %d, drain-migrated %d, backfilled %d\n",
		fs.Epoch, assignable, len(fs.Members), fs.Readmissions, fs.DrainMigrated, fs.Backfilled)
	for _, m := range fs.Members {
		fmt.Printf("  %-8s %s (epoch %d)", m.State, m.URL, m.Epoch)
		if m.Breaker != "" {
			fmt.Printf("  breaker %s", m.Breaker)
		}
		if m.LastError != "" {
			fmt.Printf("  last error: %s", m.LastError)
		}
		fmt.Println()
	}
}

// runTop prints per-route request counts and p50/p99 for each worker
// that answers, then the fleet-wide merge. Down workers are reported
// and skipped; the command fails only when no worker answers at all.
func runTop(ctx context.Context, log *slog.Logger, urls []string, copts []client.Option) int {
	per := make([]fleet.WorkerLatency, 0, len(urls))
	answered := 0
	for _, u := range urls {
		c, err := client.New(u, copts...)
		if err != nil {
			log.Error("bad worker URL", "worker", u, "err", err)
			continue
		}
		st, err := c.Stats(ctx)
		if err != nil {
			log.Warn("worker unreachable, skipping", "worker", u, "err", err)
			per = append(per, fleet.WorkerLatency{URL: u, Err: err})
			continue
		}
		answered++
		per = append(per, fleet.WorkerLatency{URL: u, Routes: st.Routes})
	}
	if answered == 0 {
		log.Error("no worker answered")
		return 1
	}
	for _, w := range per {
		if w.Err != nil {
			fmt.Printf("%s: unreachable (%v)\n", w.URL, w.Err)
			continue
		}
		fmt.Printf("%s:\n", w.URL)
		printRoutes("  ", w.Routes)
	}
	if answered > 1 {
		fmt.Println("fleet (merged):")
		printRoutes("  ", fleet.MergeRouteLatencies(per))
	}
	return 0
}

func printRoutes(indent string, routes []api.LatencyHistogram) {
	if len(routes) == 0 {
		fmt.Printf("%s(no requests observed)\n", indent)
		return
	}
	fmt.Printf("%s%-28s %10s %12s %12s\n", indent, "route", "count", "p50", "p99")
	for _, h := range routes {
		fmt.Printf("%s%-28s %10d %12s %12s\n", indent, h.Route, h.Count,
			fmtSeconds(h.Quantile(0.50)), fmtSeconds(h.Quantile(0.99)))
	}
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

// runTrace asks each worker for the trace until one — the job's owner —
// has it, then prints the span tree with gap accounting.
func runTrace(ctx context.Context, log *slog.Logger, urls []string, copts []client.Option, id string) int {
	var lastErr error
	for _, u := range urls {
		c, err := client.New(u, copts...)
		if err != nil {
			log.Error("bad worker URL", "worker", u, "err", err)
			continue
		}
		tr, err := c.Trace(ctx, id)
		if err != nil {
			var apiErr *api.Error
			if errors.As(err, &apiErr) && apiErr.Code == api.CodeNotFound {
				continue // not this worker's job
			}
			log.Warn("trace fetch failed", "worker", u, "err", err)
			lastErr = err
			continue
		}
		fmt.Printf("worker %s\n", u)
		printTrace(tr)
		return 0
	}
	if lastErr != nil {
		log.Error("trace not found on any reachable worker", "id", id, "last_err", lastErr)
	} else {
		log.Error("trace not found on any worker (still running, evicted, or never submitted)", "id", id)
	}
	return 1
}

func printTrace(tr *api.TraceResponse) {
	fmt.Printf("trace %s  %s  start %s  total %s\n",
		tr.ID, tr.Label, tr.Start, fmtUs(tr.TotalUs))
	for _, sp := range tr.Spans {
		fmt.Printf("  %-10s +%-12s %s\n", sp.Name, fmtUs(sp.StartUs), fmtUs(sp.DurUs))
	}
	fmt.Printf("  %-10s %s\n", "(gap)", fmtUs(tr.UnaccountedUs))
}

func fmtUs(us int64) string {
	return (time.Duration(us) * time.Microsecond).String()
}
