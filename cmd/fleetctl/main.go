// Command fleetctl operates a clusterd fleet's control plane: inspect
// membership, drain a worker out of the fleet without losing cache
// affinity, scale up with a pre-warmed newcomer, or re-admit recovered
// workers on demand.
//
// Usage:
//
//	fleetctl -workers http://h1:8080,http://h2:8080 status
//	fleetctl -workers http://h1:8080,http://h2:8080 drain http://h2:8080
//	fleetctl -workers http://h1:8080 add http://h3:8080
//	fleetctl -workers http://h1:8080,http://h2:8080 readmit
//	fleetctl -workers ... -coordinator http://coord:8080 drain http://h2:8080
//
// drain migrates every result blob the departing worker holds to its
// consistent-hash successors before removing it, so the survivors
// inherit its key range warm and nothing re-simulates. add health-checks
// the newcomer and backfills the key ranges it will steal from their
// current owners before announcing it. readmit probes workers the fleet
// marked dead and restores the ones that answer.
//
// With -coordinator, every transition is compare-and-swapped through the
// shared ring register (a clusterd started with -coordinator), so fleet
// runners pointing at the same register observe the change on their next
// batch — drain a worker here while steerbench runs elsewhere, and the
// run routes around it without duplicating work.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"clustersim/client"
	"clustersim/fleet"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: fleetctl -workers URL[,URL...] [flags] <command> [arg]

commands:
  status          print the membership view and lifecycle counters
  drain <url>     migrate a worker's results to its ring successors, then remove it
  add <url>       health-check a new worker, backfill its key ranges, then admit it
  readmit         probe dead workers now and re-admit the ones that recovered

flags:
`)
	flag.PrintDefaults()
	os.Exit(2)
}

func main() {
	var (
		workers  = flag.String("workers", "", "comma-separated clusterd worker URLs (the current fleet)")
		coordURL = flag.String("coordinator", "", "clusterd -coordinator URL: transitions go through the shared ring register")
		token    = flag.String("token", "", "bearer token for workers started with -token")
		timeout  = flag.Duration("timeout", 10*time.Minute, "bound the whole operation (drains move every blob the worker holds)")
	)
	flag.Usage = usage
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 || flag.NArg() == 0 {
		usage()
	}
	cmd, arg := flag.Arg(0), flag.Arg(1)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	fopts := []fleet.Option{
		fleet.WithLog(func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}),
		// Fail fast: fleetctl talks to workers an operator believes are up.
		fleet.WithClientOptions(client.WithRetries(2)),
	}
	if *token != "" {
		fopts = append(fopts, fleet.WithToken(*token))
	}
	if *coordURL != "" {
		fopts = append(fopts, fleet.WithCoordinator(*coordURL))
	}
	f, err := fleet.New(urls, fopts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetctl: %v\n", err)
		os.Exit(1)
	}

	switch cmd {
	case "status":
		// Construction already synced with the coordinator when one is set.
	case "drain":
		if arg == "" {
			usage()
		}
		if err := f.Drain(ctx, arg); err != nil {
			fmt.Fprintf(os.Stderr, "fleetctl: drain: %v\n", err)
			os.Exit(1)
		}
	case "add":
		if arg == "" {
			usage()
		}
		if err := f.AddWorker(ctx, arg); err != nil {
			fmt.Fprintf(os.Stderr, "fleetctl: add: %v\n", err)
			os.Exit(1)
		}
	case "readmit":
		f.Readmit(ctx)
	default:
		usage()
	}

	printStatus(f.FleetStats())
}

func printStatus(fs fleet.Stats) {
	assignable := 0
	for _, m := range fs.Members {
		if m.State == "alive" || m.State == "draining" {
			assignable++
		}
	}
	fmt.Printf("fleet: epoch %d, %d/%d workers assignable, readmissions %d, drain-migrated %d, backfilled %d\n",
		fs.Epoch, assignable, len(fs.Members), fs.Readmissions, fs.DrainMigrated, fs.Backfilled)
	for _, m := range fs.Members {
		fmt.Printf("  %-8s %s (epoch %d)", m.State, m.URL, m.Epoch)
		if m.LastError != "" {
			fmt.Printf("  last error: %s", m.LastError)
		}
		fmt.Println()
	}
}
