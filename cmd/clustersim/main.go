// Command clustersim runs one workload under one or more steering
// configurations and prints the metrics — the single-run entry point of
// the simulator.
//
// Usage:
//
//	clustersim -workload gzip-1 -configs OP,VC -clusters 2 -uops 120000
//	clustersim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"clustersim"
)

func main() {
	var (
		name     = flag.String("workload", "gzip-1", "simulation point name (see -list)")
		configs  = flag.String("configs", "OP,one-cluster,OB,RHOP,VC", "comma-separated configurations")
		clusters = flag.Int("clusters", 2, "physical cluster count")
		numVC    = flag.Int("vc", 2, "virtual clusters for the VC configuration")
		uops     = flag.Int("uops", 120_000, "dynamic micro-ops to simulate")
		warmup   = flag.Int("warmup", 0, "micro-ops excluded from metrics (cache/predictor warmup)")
		profile  = flag.Bool("profile", false, "render queue-occupancy histograms per configuration")
		list     = flag.Bool("list", false, "list available workloads and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("available workloads (name, weight, class):")
		for _, w := range clustersim.Workloads() {
			class := "INT"
			if w.FP {
				class = "FP"
			}
			fmt.Printf("  %-12s w=%.3f %s\n", w.Name, w.Weight, class)
		}
		return
	}

	w := clustersim.WorkloadByName(*name)
	if w == nil {
		fmt.Fprintf(os.Stderr, "unknown workload %q (try -list)\n", *name)
		os.Exit(1)
	}

	var setups []clustersim.Setup
	for _, c := range strings.Split(*configs, ",") {
		switch strings.TrimSpace(c) {
		case "OP":
			setups = append(setups, clustersim.SetupOP(*clusters))
		case "one-cluster":
			setups = append(setups, clustersim.SetupOneCluster(*clusters))
		case "OB":
			setups = append(setups, clustersim.SetupOB(*clusters))
		case "RHOP":
			setups = append(setups, clustersim.SetupRHOP(*clusters))
		case "VC":
			setups = append(setups, clustersim.SetupVC(*numVC, *clusters))
		default:
			fmt.Fprintf(os.Stderr, "unknown configuration %q\n", c)
			os.Exit(1)
		}
	}

	fmt.Printf("workload %s, %d clusters, %d micro-ops\n\n", w.Name, *clusters, *uops)
	var baseCycles int64
	for i, setup := range setups {
		opt := clustersim.RunOptions{NumUops: *uops, WarmupUops: *warmup}
		if *profile {
			opt.MachineTweak = func(cfg *clustersim.MachineConfig) { cfg.TrackHistograms = true }
		}
		res := clustersim.Run(w, setup, opt)
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", setup.Label, res.Err)
			os.Exit(1)
		}
		m := res.Metrics
		if i == 0 {
			baseCycles = m.Cycles
		}
		rel := float64(m.Cycles)/float64(baseCycles)*100 - 100
		fmt.Printf("%-12s cycles=%-9d IPC=%-5.2f copies=%-7d copies/kuop=%-6.1f "+
			"allocStall=%-8d mispred=%4.1f%%  vs-first=%+.2f%%\n",
			setup.Label, m.Cycles, m.IPC(), m.Copies, m.CopiesPerKuop(),
			m.AllocStallCycles, m.MispredictRate()*100, rel)
		if *profile && m.Histograms != nil {
			fmt.Println(m.Histograms.Render())
		}
	}
}
