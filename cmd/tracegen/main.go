// Command tracegen inspects the synthetic workloads: it dumps a workload's
// static program, its compiler regions with annotations (after a chosen
// pass), or a window of its dynamic trace.
//
// Usage:
//
//	tracegen -workload mcf -show program
//	tracegen -workload gzip-1 -show regions -pass vc -vcs 2
//	tracegen -workload swim -show trace -n 50
package main

import (
	"flag"
	"fmt"
	"os"

	"clustersim"
	"clustersim/internal/ddg"
	"clustersim/internal/partition"
	"clustersim/internal/prog"
	"clustersim/internal/trace"
)

func main() {
	var (
		name = flag.String("workload", "gzip-1", "simulation point name")
		show = flag.String("show", "program", "what to dump: program|regions|trace|stats")
		pass = flag.String("pass", "vc", "compiler pass for -show regions: vc|ob|rhop|none")
		vcs  = flag.Int("vcs", 2, "virtual clusters / physical clusters for the pass")
		n    = flag.Int("n", 40, "dynamic micro-ops to dump for -show trace")
		save = flag.String("save", "", "expand the annotated trace and save it to this file")
		load = flag.String("load", "", "load a saved trace instead of generating (with -show trace)")
	)
	flag.Parse()

	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		tr, err := trace.Load(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("loaded trace %s: %d micro-ops\n", tr.Name, len(tr.Uops))
		limit := *n
		if limit > len(tr.Uops) {
			limit = len(tr.Uops)
		}
		for i := 0; i < limit; i++ {
			u := &tr.Uops[i]
			fmt.Printf("  %4d pc=%-4d %-40s %s\n", i, u.PC, opString(u.Static), annString(u.Static))
		}
		return
	}

	w := clustersim.WorkloadByName(*name)
	if w == nil {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *name)
		os.Exit(1)
	}
	p := w.Program.Clone()

	if *save != "" {
		annotate(p, *pass, *vcs)
		tr := trace.Expand(p, trace.Options{NumUops: *n, Seed: w.Seed})
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.Save(f, tr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("saved %d micro-ops of %s to %s\n", len(tr.Uops), tr.Name, *save)
		return
	}

	switch *show {
	case "program":
		dumpProgram(p)
	case "regions":
		annotate(p, *pass, *vcs)
		dumpRegions(p)
	case "trace":
		annotate(p, *pass, *vcs)
		dumpTrace(p, w.Seed, *n)
	case "stats":
		dumpStats(p)
	case "ddg":
		annotate(p, *pass, *vcs)
		dumpDDG(p, *pass)
	default:
		fmt.Fprintf(os.Stderr, "unknown -show %q\n", *show)
		os.Exit(1)
	}
}

// dumpDDG prints each region's dependence graph in Graphviz DOT form,
// colored by the chosen pass's annotations.
func dumpDDG(p *prog.Program, pass string) {
	regions := prog.FormRegions(p, prog.RegionOptions{})
	for ri, r := range regions {
		g := ddg.Build(r)
		fmt.Println(ddg.Dot(g, ddg.DotOptions{
			Title:        fmt.Sprintf("%s_region%d", p.Name, ri),
			ShowVC:       pass == "vc",
			ShowStatic:   pass == "ob" || pass == "rhop",
			MarkCritical: true,
		}))
	}
}

func annotate(p *prog.Program, pass string, k int) {
	opts := partition.Options{NumVC: k, NumClusters: k}
	switch pass {
	case "vc":
		partition.AnnotateVC(p, opts)
	case "ob":
		partition.AnnotateOB(p, opts)
	case "rhop":
		partition.AnnotateRHOP(p, opts)
	case "none":
	default:
		fmt.Fprintf(os.Stderr, "unknown -pass %q\n", pass)
		os.Exit(1)
	}
}

func opString(op *prog.StaticOp) string {
	s := fmt.Sprintf("%-6s %s <- %s, %s", op.Opcode, op.Dst, op.Src1, op.Src2)
	if op.IsMem() {
		s += fmt.Sprintf("  [%s stream=%d ws=%dKB]", op.Mem.Pattern, op.Mem.Stream, op.Mem.WorkingSet>>10)
	}
	if op.Opcode.IsBranch() {
		s += fmt.Sprintf("  [p=%.2f bias=%.2f]", op.TakenProb, op.Bias)
	}
	return s
}

func annString(op *prog.StaticOp) string {
	switch {
	case op.Ann.VC >= 0 && op.Ann.Leader:
		return fmt.Sprintf("vc=%d LEADER", op.Ann.VC)
	case op.Ann.VC >= 0:
		return fmt.Sprintf("vc=%d", op.Ann.VC)
	case op.Ann.Static >= 0:
		return fmt.Sprintf("cluster=%d", op.Ann.Static)
	}
	return ""
}

func dumpProgram(p *prog.Program) {
	fmt.Printf("program %s: %d blocks, %d static ops\n", p.Name, len(p.Blocks), p.NumStaticOps())
	for _, b := range p.Blocks {
		fmt.Printf("\nblock b%d:\n", b.ID)
		for i := range b.Ops {
			fmt.Printf("  %2d: %s\n", i, opString(&b.Ops[i]))
		}
		for _, e := range b.Succs {
			fmt.Printf("  -> b%d (p=%.2f)\n", e.To, e.Prob)
		}
	}
}

func dumpRegions(p *prog.Program) {
	regions := prog.FormRegions(p, prog.RegionOptions{})
	fmt.Printf("program %s: %d regions\n", p.Name, len(regions))
	for ri, r := range regions {
		fmt.Printf("\nregion %d (%d ops):\n", ri, r.NumOps())
		r.ForEachOp(func(idx int, op *prog.StaticOp) {
			fmt.Printf("  %3d: %-40s %s\n", idx, opString(op), annString(op))
		})
		st := partition.CollectChainStats(r)
		if st.Chains > 0 {
			fmt.Printf("  chains=%d meanLen=%.1f maxLen=%d\n", st.Chains, st.MeanLen, st.MaxLen)
		}
	}
}

func dumpTrace(p *prog.Program, seed int64, n int) {
	tr := trace.Expand(p, trace.Options{NumUops: n, Seed: seed})
	fmt.Printf("trace %s: first %d micro-ops (seed %d)\n", tr.Name, n, seed)
	for i := range tr.Uops {
		u := &tr.Uops[i]
		extra := ""
		if u.IsMem() {
			extra = fmt.Sprintf(" addr=%#x", u.Addr)
		}
		if u.IsBranch() {
			extra = fmt.Sprintf(" taken=%v", u.Taken)
		}
		fmt.Printf("  %4d pc=%-4d %-40s %s%s\n", i, u.PC, opString(u.Static), annString(u.Static), extra)
	}
}

func dumpStats(p *prog.Program) {
	tr := trace.Expand(p, trace.Options{NumUops: 50_000, Seed: 1})
	classCount := map[string]int{}
	branches, taken := 0, 0
	for i := range tr.Uops {
		u := &tr.Uops[i]
		classCount[u.Static.Opcode.Class().String()]++
		if u.IsBranch() {
			branches++
			if u.Taken {
				taken++
			}
		}
	}
	fmt.Printf("dynamic mix of %s over 50000 uops:\n", p.Name)
	for class, n := range classCount {
		fmt.Printf("  %-8s %5.1f%%\n", class, float64(n)/500)
	}
	if branches > 0 {
		fmt.Printf("  branch taken rate: %.1f%%\n", float64(taken)/float64(branches)*100)
	}
}
