// Command clusterd serves the simulation engine over HTTP: a long-running
// process wrapping one shared engine and a tiered (memory-over-disk)
// result store. Submitted jobs dedup against everything the store has
// ever computed, so the daemon answers repeated workloads without
// simulating.
//
// Usage:
//
//	clusterd -addr :8080 -cachedir /var/cache/clusterd
//	clusterd -addr :8080 -cachedir /var/cache/clusterd -token s3cret -compress
//
//	curl -s localhost:8080/v1/jobs -d '{"simpoint":"gzip-1","setup":{"kind":"VC","num_vc":2,"clusters":2},"opts":{"num_uops":20000}}'
//	curl -N localhost:8080/v1/jobs/sub-1/stream
//	curl -G --data-urlencode "key=<key from submit>" localhost:8080/v1/results
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/metrics          # Prometheus text format
//
// The typed Go SDK for this API lives in clustersim/client; steerbench
// -remote drives whole experiment suites against a clusterd instance.
// Completed submissions are GC'd by count (retention) and age (-subttl);
// their results remain fetchable by content key either way.
//
// With -coordinator the daemon additionally serves the fleet membership
// register (GET/POST /v1/ring): an epoch-guarded compare-and-swap view
// of which workers are alive, draining, dead, or removed, which N
// concurrent fleet runners converge on so they shard identically. A
// coordinator is an ordinary worker too — it can serve jobs alongside
// the register, or run with -parallel 1 as a dedicated control-plane
// node.
//
// SIGINT/SIGTERM cancels in-flight simulations and shuts down cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"clustersim/internal/engine"
	"clustersim/internal/service"
	"clustersim/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		cacheDir = flag.String("cachedir", "", "persist results in this directory (empty = memory only)")
		cacheMax = flag.Int64("cachemax", 0, "bound the disk store to this many bytes (0 = unbounded)")
		memMax   = flag.Int64("memmax", 256<<20, "bound the in-memory result tier to this many bytes")
		par      = flag.Int("parallel", 0, "concurrent simulations (0 = all cores)")
		subTTL   = flag.Duration("subttl", time.Hour, "GC completed submissions after this long (0 = count-based retention only)")
		token    = flag.String("token", "", "require this bearer token on every request (empty = no auth; /healthz stays open)")
		compress = flag.Bool("compress", false, "gzip result blobs in the disk store (old uncompressed blobs stay readable)")
		coord    = flag.Bool("coordinator", false, "serve the fleet membership register on /v1/ring (for fleets sharing one placement view)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var st store.Store = store.NewMemory(*memMax)
	if *cacheDir != "" {
		var dopts []store.DiskOption
		if *compress {
			dopts = append(dopts, store.WithCompression())
		}
		disk, err := store.OpenDisk(*cacheDir, *cacheMax, dopts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st = store.NewTiered(st, disk)
		fmt.Fprintf(os.Stderr, "clusterd: result store at %s (%d blobs)\n", disk.Dir(), disk.Stats().Entries)
	}
	eng := engine.New(engine.Options{Parallelism: *par, ResultStore: st})

	svc := service.New(ctx, eng, st)
	svc.SetTTL(*subTTL)
	svc.SetToken(*token)
	if *coord {
		svc.EnableCoordinator()
		fmt.Fprintln(os.Stderr, "clusterd: coordinator mode: serving the fleet ring register")
	}
	srv := &http.Server{Addr: *addr, Handler: svc}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "clusterd: serving on %s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "clusterd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, err)
	}
}
