// Command clusterd serves the simulation engine over HTTP: a long-running
// process wrapping one shared engine and a tiered (memory-over-disk)
// result store. Submitted jobs dedup against everything the store has
// ever computed, so the daemon answers repeated workloads without
// simulating.
//
// Usage:
//
//	clusterd -addr :8080 -cachedir /var/cache/clusterd
//	clusterd -addr :8080 -cachedir /var/cache/clusterd -token s3cret -compress
//
//	curl -s localhost:8080/v1/jobs -d '{"simpoint":"gzip-1","setup":{"kind":"VC","num_vc":2,"clusters":2},"opts":{"num_uops":20000}}'
//	curl -N localhost:8080/v1/jobs/sub-1/stream
//	curl -G --data-urlencode "key=<key from submit>" localhost:8080/v1/results
//	curl -s localhost:8080/v1/trace/<trace id from submit>
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/metrics          # Prometheus text format
//
// The typed Go SDK for this API lives in clustersim/client; steerbench
// -remote drives whole experiment suites against a clusterd instance.
// Completed submissions are GC'd by count (retention) and age (-subttl);
// their results remain fetchable by content key either way.
//
// With -coordinator the daemon additionally serves the fleet membership
// register (GET/POST /v1/ring): an epoch-guarded compare-and-swap view
// of which workers are alive, draining, dead, or removed, which N
// concurrent fleet runners converge on so they shard identically. A
// coordinator is an ordinary worker too — it can serve jobs alongside
// the register, or run with -parallel 1 as a dedicated control-plane
// node.
//
// Every job gets a trace ID (returned in the submit ack, seedable via
// the Clustersim-Trace-Id header); GET /v1/trace/{id} returns its
// per-stage span tree, -tracecap bounds how many completed traces stay
// queryable. Operational output is structured logging via log/slog
// (-log-level, -log-format); -debug-addr serves net/http/pprof on a
// separate listener for live profiling.
//
// SIGINT/SIGTERM cancels in-flight simulations and shuts down cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"clustersim/internal/admission"
	"clustersim/internal/engine"
	"clustersim/internal/faultinject"
	"clustersim/internal/obs"
	"clustersim/internal/service"
	"clustersim/internal/store"
)

// newLogger builds the process logger from the -log-level / -log-format
// flags. Unknown values fall back to info/text rather than refusing to
// start — logging must never keep the daemon down.
func newLogger(level, format string) *slog.Logger {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		lvl = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lvl}
	if strings.ToLower(format) == "json" {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts))
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		cacheDir  = flag.String("cachedir", "", "persist results in this directory (empty = memory only)")
		cacheMax  = flag.Int64("cachemax", 0, "bound the disk store to this many bytes (0 = unbounded)")
		memMax    = flag.Int64("memmax", 256<<20, "bound the in-memory result tier to this many bytes")
		par       = flag.Int("parallel", 0, "concurrent simulations (0 = all cores)")
		subTTL    = flag.Duration("subttl", time.Hour, "GC completed submissions after this long (0 = count-based retention only)")
		retention = flag.Int("retention", 0, "completed submissions kept queryable by id (0 = server default; results stay fetchable by key regardless)")
		token     = flag.String("token", "", "require this bearer token on every request (empty = no auth; /healthz stays open)")
		compress  = flag.Bool("compress", false, "gzip result blobs in the disk store (old uncompressed blobs stay readable)")
		coord     = flag.Bool("coordinator", false, "serve the fleet membership register on /v1/ring (for fleets sharing one placement view)")
		traceCap  = flag.Int("tracecap", 4096, "completed job traces kept queryable on /v1/trace/{id} (0 disables tracing)")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error (access log rides at debug)")
		logFormat = flag.String("log-format", "text", "log format: text or json")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this separate listener (empty = disabled)")
		rate      = flag.Float64("rate", 0, "per-tenant admitted jobs per second (0 = unlimited)")
		burst     = flag.Float64("burst", 0, "per-tenant burst allowance in jobs (0 = max(rate, 1))")
		quota     = flag.Int("quota", 0, "per-tenant in-flight job quota; larger batches 429 (0 = unlimited)")
		chaos     = flag.String("chaos", "", "fault-injection schedule for resilience testing, e.g. \"seed=1,latency=5ms,error=0.05\" (/healthz stays exempt)")
	)
	flag.Parse()

	log := newLogger(*logLevel, *logFormat)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var st store.Store = store.NewMemory(*memMax)
	if *cacheDir != "" {
		var dopts []store.DiskOption
		if *compress {
			dopts = append(dopts, store.WithCompression())
		}
		disk, err := store.OpenDisk(*cacheDir, *cacheMax, dopts...)
		if err != nil {
			log.Error("opening disk store", "err", err)
			os.Exit(1)
		}
		st = store.NewTiered(st, disk)
		log.Info("result store opened", "dir", disk.Dir(), "blobs", disk.Stats().Entries)
	}
	var tracer *obs.Tracer
	if *traceCap > 0 {
		tracer = obs.NewTracer(*traceCap)
	}
	eng := engine.New(engine.Options{Parallelism: *par, ResultStore: st, Tracer: tracer})

	svc := service.New(ctx, eng, st)
	svc.SetTTL(*subTTL)
	if *retention > 0 {
		svc.SetRetention(*retention)
	}
	svc.SetToken(*token)
	svc.SetLogger(log)
	if *coord {
		svc.EnableCoordinator()
		log.Info("coordinator mode: serving the fleet ring register")
	}
	if *rate > 0 || *quota > 0 {
		svc.SetAdmission(admission.New(admission.Limits{Rate: *rate, Burst: *burst, MaxInFlight: *quota}))
		log.Info("admission control enabled", "rate", *rate, "burst", *burst, "quota", *quota)
	}
	var handler http.Handler = svc
	if *chaos != "" {
		cfg, err := faultinject.Parse(*chaos)
		if err != nil {
			log.Error("bad -chaos schedule", "err", err)
			os.Exit(1)
		}
		handler = faultinject.New(cfg).Middleware(svc)
		log.Warn("fault injection enabled — this daemon will misbehave on purpose", "schedule", *chaos)
	}
	if *debugAddr != "" {
		// pprof registers on http.DefaultServeMux (the blank import); a
		// separate listener keeps the profiling surface off the API port,
		// so -token auth and pprof exposure stay independent decisions.
		go func() {
			log.Info("pprof debug listener", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Error("debug listener failed", "err", err)
			}
		}()
	}
	srv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Info("serving", "addr", *addr, "parallel", eng.Parallelism(), "tracecap", *traceCap)

	select {
	case err := <-errc:
		log.Error("server failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	log.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Error("shutdown", "err", err)
	}
}
