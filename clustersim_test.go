package clustersim

import (
	"testing"

	"clustersim/internal/prog"
	"clustersim/internal/uarch"
)

func TestPublicQuickRun(t *testing.T) {
	sp := WorkloadByName("crafty")
	if sp == nil {
		t.Fatal("crafty missing from suite")
	}
	res := Run(sp, SetupVC(2, 2), RunOptions{NumUops: 5000})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Metrics.Uops != 5000 {
		t.Errorf("committed %d uops", res.Metrics.Uops)
	}
	if res.Metrics.IPC() <= 0 {
		t.Error("non-positive IPC")
	}
}

func TestPublicSuites(t *testing.T) {
	if n := len(Workloads()); n != 40 {
		t.Errorf("Workloads = %d, want 40", n)
	}
	if n := len(IntWorkloads()); n != 26 {
		t.Errorf("IntWorkloads = %d, want 26", n)
	}
	if n := len(FPWorkloads()); n != 14 {
		t.Errorf("FPWorkloads = %d, want 14", n)
	}
	if n := len(QuickWorkloads()); n != 8 {
		t.Errorf("QuickWorkloads = %d, want 8", n)
	}
}

func TestPublicCustomWorkload(t *testing.T) {
	b := NewProgram("custom")
	b.Int(uarch.OpAdd, uarch.IntReg(1), uarch.IntReg(1), uarch.IntReg(2))
	b.Load(uarch.IntReg(2), uarch.IntReg(1), prog.MemRef{
		Pattern: prog.MemStride, Stream: 0, StrideBytes: 8, WorkingSet: 1 << 16,
	})
	p := b.MustBuild()
	w := CustomWorkload(p, 7)
	res := Run(w, SetupOP(2), RunOptions{NumUops: 3000})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Metrics.Uops != 3000 {
		t.Errorf("committed %d", res.Metrics.Uops)
	}
}

func TestPublicExpandTrace(t *testing.T) {
	b := NewProgram("t")
	b.Int(uarch.OpAdd, uarch.IntReg(1), uarch.IntReg(1), uarch.IntReg(1))
	p := b.MustBuild()
	tr := ExpandTrace(p, 100, 1)
	if len(tr.Uops) != 100 {
		t.Errorf("trace length %d", len(tr.Uops))
	}
}

func TestPublicRunMatrix(t *testing.T) {
	ws := QuickWorkloads()[:2]
	setups := []Setup{SetupOP(2), SetupOneCluster(2)}
	res := RunMatrix(ws, setups, RunOptions{NumUops: 3000}, 2)
	if len(res) != 2 || len(res[0]) != 2 {
		t.Fatalf("matrix shape %dx%d", len(res), len(res[0]))
	}
	for _, row := range res {
		for _, cell := range row {
			if cell.Err != nil {
				t.Fatal(cell.Err)
			}
		}
	}
}

func TestPublicTables(t *testing.T) {
	if Table2() == "" || Table3() == "" {
		t.Error("empty table render")
	}
}

func TestDefaultMachineValidates(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		cfg := DefaultMachine(n)
		if err := cfg.Validate(); err != nil {
			t.Errorf("DefaultMachine(%d): %v", n, err)
		}
	}
}
