package clustersim

import (
	"context"
	"net/http/httptest"
	"testing"

	"clustersim/client"
	"clustersim/fleet"
	"clustersim/internal/engine"
	"clustersim/internal/prog"
	"clustersim/internal/service"
	"clustersim/internal/store"
	"clustersim/internal/uarch"
)

func TestPublicQuickRun(t *testing.T) {
	sp := WorkloadByName("crafty")
	if sp == nil {
		t.Fatal("crafty missing from suite")
	}
	res := Run(sp, SetupVC(2, 2), RunOptions{NumUops: 5000})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Metrics.Uops != 5000 {
		t.Errorf("committed %d uops", res.Metrics.Uops)
	}
	if res.Metrics.IPC() <= 0 {
		t.Error("non-positive IPC")
	}
}

func TestPublicSuites(t *testing.T) {
	if n := len(Workloads()); n != 40 {
		t.Errorf("Workloads = %d, want 40", n)
	}
	if n := len(IntWorkloads()); n != 26 {
		t.Errorf("IntWorkloads = %d, want 26", n)
	}
	if n := len(FPWorkloads()); n != 14 {
		t.Errorf("FPWorkloads = %d, want 14", n)
	}
	if n := len(QuickWorkloads()); n != 8 {
		t.Errorf("QuickWorkloads = %d, want 8", n)
	}
}

func TestPublicCustomWorkload(t *testing.T) {
	b := NewProgram("custom")
	b.Int(uarch.OpAdd, uarch.IntReg(1), uarch.IntReg(1), uarch.IntReg(2))
	b.Load(uarch.IntReg(2), uarch.IntReg(1), prog.MemRef{
		Pattern: prog.MemStride, Stream: 0, StrideBytes: 8, WorkingSet: 1 << 16,
	})
	p := b.MustBuild()
	w := CustomWorkload(p, 7)
	res := Run(w, SetupOP(2), RunOptions{NumUops: 3000})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Metrics.Uops != 3000 {
		t.Errorf("committed %d", res.Metrics.Uops)
	}
}

func TestPublicExpandTrace(t *testing.T) {
	b := NewProgram("t")
	b.Int(uarch.OpAdd, uarch.IntReg(1), uarch.IntReg(1), uarch.IntReg(1))
	p := b.MustBuild()
	tr := ExpandTrace(p, 100, 1)
	if len(tr.Uops) != 100 {
		t.Errorf("trace length %d", len(tr.Uops))
	}
}

func TestPublicRunMatrix(t *testing.T) {
	ws := QuickWorkloads()[:2]
	setups := []Setup{SetupOP(2), SetupOneCluster(2)}
	res := RunMatrix(ws, setups, RunOptions{NumUops: 3000}, 2)
	if len(res) != 2 || len(res[0]) != 2 {
		t.Fatalf("matrix shape %dx%d", len(res), len(res[0]))
	}
	for _, row := range res {
		for _, cell := range row {
			if cell.Err != nil {
				t.Fatal(cell.Err)
			}
		}
	}
}

func TestPublicTables(t *testing.T) {
	if Table2() == "" || Table3() == "" {
		t.Error("empty table render")
	}
}

func TestDefaultMachineValidates(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		cfg := DefaultMachine(n)
		if err := cfg.Validate(); err != nil {
			t.Errorf("DefaultMachine(%d): %v", n, err)
		}
	}
}

// NewFleetRunner degrades gracefully: one URL yields the plain
// single-host remote runner (no sharding layer), several yield the
// fleet runner.
func TestNewFleetRunnerDegradesToClientRunner(t *testing.T) {
	st := store.NewMemory(16 << 20)
	eng := engine.New(engine.Options{Parallelism: 1, ResultStore: st})
	svc := service.New(context.Background(), eng, st)
	ts := httptest.NewServer(svc)
	defer ts.Close()

	single, err := NewFleetRunner([]string{ts.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := single.(*client.Runner); !ok {
		t.Errorf("one URL built a %T, want *client.Runner", single)
	}

	// Slash-variants of one worker are canonicalized and rejected as
	// duplicates rather than joining the ring twice.
	if _, err := NewFleetRunner([]string{ts.URL, ts.URL + "/"}, nil); err == nil {
		t.Error("slash-variant duplicate worker accepted")
	}

	st2 := store.NewMemory(16 << 20)
	eng2 := engine.New(engine.Options{Parallelism: 1, ResultStore: st2})
	ts2 := httptest.NewServer(service.New(context.Background(), eng2, st2))
	defer ts2.Close()
	multi, err := NewFleetRunner([]string{ts.URL, ts2.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := multi.(*fleet.Runner); !ok {
		t.Errorf("two URLs built a %T, want *fleet.Runner", multi)
	}
	res := RunOn(context.Background(), multi, WorkloadByName("crafty"), SetupOP(2), RunOptions{NumUops: 2000})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
}
