package clustersim

// Benchmark harness: one testing.B benchmark per paper table/figure plus
// the design-choice ablations and substrate micro-benchmarks.
//
//	go test -bench=. -benchmem
//
// Figure/table benches run a reduced suite per iteration (the full-suite
// reports come from cmd/steerbench) and report the paper-relevant summary
// statistics via b.ReportMetric: slowdown percentages vs the OP baseline,
// copy ratios, and steering-logic rates.

import (
	"runtime"
	"testing"

	"clustersim/internal/experiments"
	"clustersim/internal/partition"
	"clustersim/internal/pipeline"
	"clustersim/internal/prog"
	"clustersim/internal/steer"
	"clustersim/internal/trace"
	"clustersim/internal/uarch"
	"clustersim/internal/workload"
)

// benchOpts keeps per-iteration work small enough for -bench runs while
// still exercising every machine component.
func benchOpts() ExperimentOptions {
	return ExperimentOptions{NumUops: 10_000, Quick: true}
}

// BenchmarkTable1Complexity regenerates Table 1: steering-logic activity of
// the hardware-only OP scheme vs the hybrid VC scheme.
func BenchmarkTable1Complexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Table1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(steer.PerKuop(r.OP.DependenceChecks, r.OP.Steered), "OP-depchecks/kuop")
			b.ReportMetric(steer.PerKuop(r.VC.MapReads, r.VC.Steered), "VC-mapreads/kuop")
			b.ReportMetric(steer.PerKuop(r.VC.DependenceChecks, r.VC.Steered), "VC-depchecks/kuop")
		}
	}
}

// BenchmarkFig5 regenerates Figure 5: 2-cluster slowdowns vs OP for
// one-cluster, OB, RHOP and VC (paper averages: 12.19 / 6.50 / 5.40 / 2.62).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Fig5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.AllAvg["one-cluster"], "one-cluster-slowdown-%")
			b.ReportMetric(r.AllAvg["OB"], "OB-slowdown-%")
			b.ReportMetric(r.AllAvg["RHOP"], "RHOP-slowdown-%")
			b.ReportMetric(r.AllAvg["VC"], "VC-slowdown-%")
		}
	}
}

// BenchmarkFig6Scatter regenerates Figure 6: per-trace copy reduction and
// workload-balance improvement of VC against OB, RHOP and OP.
func BenchmarkFig6Scatter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Fig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, panel := range r.Panels {
				b.ReportMetric(panel.CopyReducedFrac*100, "copyreduced-vs-"+panel.Versus+"-%")
			}
		}
	}
}

// BenchmarkFig7 regenerates Figure 7: 4-cluster slowdowns vs OP, including
// VC(4→4) vs VC(2→4) and their copy ratio (paper: 1.28×).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Fig7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.AllAvg["OB"], "OB-slowdown-%")
			b.ReportMetric(r.AllAvg["RHOP"], "RHOP-slowdown-%")
			b.ReportMetric(r.AllAvg["VC"], "VC44-slowdown-%")
			b.ReportMetric(r.AllAvg["VC(2->4)"], "VC24-slowdown-%")
			b.ReportMetric(r.CopyRatio44vs24, "copies-44/24")
		}
	}
}

// BenchmarkAblationChainLen sweeps the VC chain-length cap.
func BenchmarkAblationChainLen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationChainLen(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, pt := range r.Points {
				b.ReportMetric(pt.SlowdownPct, pt.Label+"-slowdown-%")
			}
		}
	}
}

// BenchmarkAblationNumVC sweeps the virtual-cluster count on four clusters.
func BenchmarkAblationNumVC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationNumVC(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, pt := range r.Points {
				b.ReportMetric(pt.SlowdownPct, pt.Label+"-slowdown-%")
			}
		}
	}
}

// BenchmarkAblationPrefetch sweeps the substrate's prefetch degree.
func BenchmarkAblationPrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPrefetch(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicySpace runs the hardware-heuristic survey (extension of
// the paper's §3.1 discussion).
func BenchmarkPolicySpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.PolicySpace(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, pt := range r.Points {
				b.ReportMetric(pt.SlowdownPct, pt.Label+"-slowdown-%")
			}
		}
	}
}

// --- substrate micro-benchmarks ---------------------------------------------

// benchTrace builds a reusable trace for pipeline micro-benchmarks.
func benchTrace(b *testing.B, name string, uops int) *trace.Trace {
	b.Helper()
	sp := workload.ByName(name)
	if sp == nil {
		b.Fatalf("workload %s missing", name)
	}
	p := sp.Program.Clone()
	partition.AnnotateVC(p, partition.Options{NumVC: 2})
	return trace.Expand(p, trace.Options{NumUops: uops, Seed: sp.Seed})
}

// BenchmarkCoreHotLoop is the regression-gated microbenchmark of the
// pipeline's cycle loop: one full 10k-uop simulation per iteration under
// each steering policy family, reporting simulated uops per second and
// allocations per simulated uop (windowed core state and the event wheel
// keep the steady-state loop allocation-free; what remains is core
// construction amortized over the trace). CI runs this bench, converts the
// output to BENCH_6.json via cmd/benchjson, and fails on throughput or
// allocation regressions against the committed baseline.
func BenchmarkCoreHotLoop(b *testing.B) {
	// Each policy runs on a trace annotated by its own compiler pass (a
	// Static policy over VC annotations would degenerate to one cluster).
	policies := []struct {
		name     string
		annotate func(*prog.Program, partition.Options)
		make     func() steer.Policy
	}{
		{"OP", partition.AnnotateVC, func() steer.Policy { return &steer.OP{} }},
		{"VC", partition.AnnotateVC, func() steer.Policy { return steer.NewVC(2) }},
		{"OB", partition.AnnotateOB, func() steer.Policy { return &steer.Static{Label: "OB"} }},
	}
	for _, pol := range policies {
		pol := pol
		b.Run(pol.name, func(b *testing.B) {
			sp := workload.ByName("crafty")
			p := sp.Program.Clone()
			pol.annotate(p, partition.Options{NumVC: 2, NumClusters: 2})
			tr := trace.Expand(p, trace.Options{NumUops: 10_000, Seed: sp.Seed})
			b.ReportAllocs()
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core, err := pipeline.NewCore(pipeline.DefaultConfig(2), pol.make(), tr)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			runtime.ReadMemStats(&after)
			uops := float64(len(tr.Uops)) * float64(b.N)
			b.ReportMetric(uops/b.Elapsed().Seconds(), "uops/s")
			b.ReportMetric(float64(after.Mallocs-before.Mallocs)/uops, "allocs/uop")
		})
	}
}

// BenchmarkCoreConstruction is the regression-gated microbenchmark of
// per-run fixed cost: building a machine fresh (NewCore — every ring,
// cache and queue allocated) versus rewinding a pooled one (Reset — the
// engine's sweep path, which zeroes state in place). The pooled path must
// stay at least an order of magnitude below fresh construction in
// allocations; CI gates allocs/op for both via cmd/benchjson.
func BenchmarkCoreConstruction(b *testing.B) {
	tr := benchTrace(b, "crafty", 2_000)
	cfg := pipeline.DefaultConfig(2)
	b.Run("Fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pipeline.NewCore(cfg, steer.NewVC(2), tr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Pooled", func(b *testing.B) {
		core, err := pipeline.NewCore(cfg, steer.NewVC(2), tr)
		if err != nil {
			b.Fatal(err)
		}
		// Dirty the core once so the first measured Reset rewinds real
		// post-run state, as every pooled reuse does.
		if _, err := core.Run(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := core.Reset(cfg, steer.NewVC(2), tr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPipelineOP measures raw simulation throughput under the
// hardware-only policy (uops simulated per second).
func BenchmarkPipelineOP(b *testing.B) {
	tr := benchTrace(b, "crafty", 20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core, err := pipeline.NewCore(pipeline.DefaultConfig(2), &steer.OP{}, tr)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Uops)*b.N)/b.Elapsed().Seconds(), "uops/s")
}

// BenchmarkPipelineVC measures simulation throughput under the hybrid
// policy (mapping table + counters only).
func BenchmarkPipelineVC(b *testing.B) {
	tr := benchTrace(b, "crafty", 20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core, err := pipeline.NewCore(pipeline.DefaultConfig(2), steer.NewVC(2), tr)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Uops)*b.N)/b.Elapsed().Seconds(), "uops/s")
}

// BenchmarkVCPartitioner measures the compile-time VC pass (Fig. 2).
func BenchmarkVCPartitioner(b *testing.B) {
	sp := workload.ByName("swim")
	for i := 0; i < b.N; i++ {
		p := sp.Program.Clone()
		partition.AnnotateVC(p, partition.Options{NumVC: 2})
	}
}

// BenchmarkRHOPPartitioner measures the multilevel RHOP pass.
func BenchmarkRHOPPartitioner(b *testing.B) {
	sp := workload.ByName("swim")
	for i := 0; i < b.N; i++ {
		p := sp.Program.Clone()
		partition.AnnotateRHOP(p, partition.Options{NumClusters: 2})
	}
}

// BenchmarkTraceExpansion measures dynamic trace generation.
func BenchmarkTraceExpansion(b *testing.B) {
	sp := workload.ByName("gcc-1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace.Expand(sp.Program, trace.Options{NumUops: 10_000, Seed: int64(i)})
	}
	b.ReportMetric(float64(10_000*b.N)/b.Elapsed().Seconds(), "uops/s")
}

// BenchmarkProgramGeneration measures synthetic workload synthesis.
func BenchmarkProgramGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		workload.Generate(workload.SpecByName("gzip"), int64(i))
	}
}

// BenchmarkCustomKernel runs the public-API path end to end on a custom
// program — the downstream-user hot path (build, annotate, expand, run).
func BenchmarkCustomKernel(b *testing.B) {
	pb := NewProgram("kernel")
	for i := 0; i < 8; i++ {
		r := uarch.IntReg(1 + i%4)
		pb.Int(uarch.OpAdd, r, r, uarch.IntReg(0))
	}
	pb.Load(uarch.IntReg(5), uarch.IntReg(15), prog.MemRef{
		Pattern: prog.MemStride, Stream: 0, StrideBytes: 8, WorkingSet: 1 << 16,
	})
	p := pb.MustBuild()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := CustomWorkload(p.Clone(), int64(i))
		res := Run(w, SetupVC(2, 2), RunOptions{NumUops: 5_000})
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}
