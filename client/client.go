// Package client is the typed Go SDK for the clusterd HTTP API. It speaks
// the versioned wire protocol of internal/api — submit declarative job
// specs (single or batch), follow a submission's progress as server-sent
// events with automatic reconnect and exponential backoff, fetch full
// results by content key through the engine codec, and read engine/store
// statistics.
//
// Client is the transport; Runner (runner.go) layers the engine.Runner
// interface on top of it, which is what makes a clusterd instance an
// interchangeable drop-in for a local *engine.Engine everywhere the code
// base accepts a Runner.
//
//	c, _ := client.New("http://localhost:8080")
//	sub, _ := c.Submit(ctx, []clustersim.JobSpec{{Simpoint: "gzip-1",
//		Setup: engine.SetupSpec{Kind: "VC", NumClusters: 2}}})
//	c.Stream(ctx, sub.ID, func(ev api.JobEvent) { fmt.Println(ev.Setup, ev.IPC) })
//	res, _ := c.Result(ctx, sub.Keys[0])
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"clustersim/internal/api"
	"clustersim/internal/engine"
)

// ErrVersionMismatch marks a response from a server speaking a different
// wire-protocol version (or not speaking the protocol at all). The client
// refuses to decode such responses rather than misreading them.
var ErrVersionMismatch = errors.New("client: server wire-protocol version mismatch")

// ErrStreamEnded marks an SSE stream that the server closed before
// reporting the submission done, after reconnect attempts were exhausted.
var ErrStreamEnded = errors.New("client: event stream ended before completion")

// DefaultTransport is the HTTP transport shared by every Client built
// without WithHTTPClient — including every member of a fleet.Runner — so
// all traffic to a worker flows over one warm connection pool. The stock
// http.DefaultTransport keeps only 2 idle connections per host, which
// makes a batch of concurrent submits/fetches against a small fleet
// open and close a TCP connection per request; this transport raises the
// per-host idle pool to match serving-tier concurrency.
var DefaultTransport = newDefaultTransport()

func newDefaultTransport() *http.Transport {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 256
	tr.MaxIdleConnsPerHost = 64
	return tr
}

// Client is a typed clusterd API client. It is safe for concurrent use.
type Client struct {
	base          string
	hc            *http.Client
	token         string
	minBackoff    time.Duration
	maxBackoff    time.Duration
	retries       int
	submitRetries int
	rnd           func() float64 // jitter source; injectable for tests
	observer      func(route string, status int, d time.Duration)
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying HTTP client (timeouts,
// transports, test doubles). The default client has no global timeout —
// SSE streams are long-lived — so bound calls with contexts.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithBackoff sets the reconnect backoff window for streaming: delays
// double from min to max across consecutive failures.
func WithBackoff(min, max time.Duration) Option {
	return func(c *Client) { c.minBackoff, c.maxBackoff = min, max }
}

// WithRetries sets how many consecutive failed connection attempts Stream
// tolerates before giving up (progress resets the count).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithSubmitRetries sets the per-batch retry budget Submit spends on 429
// responses before surfacing the rejection (n < 0 disables retrying).
// Each retry waits out the server's Retry-After hint or the client's own
// capped-jittered backoff, whichever is longer.
func WithSubmitRetries(n int) Option { return func(c *Client) { c.submitRetries = n } }

// WithToken attaches "Authorization: Bearer <token>" to every request —
// the credential a clusterd started with -token requires. An empty token
// sends no header.
func WithToken(token string) Option { return func(c *Client) { c.token = token } }

// WithCallObserver installs a per-call timing hook: fn is invoked after
// every HTTP round trip this client makes with the normalized route
// pattern (never the raw path — IDs and keys are collapsed, so the
// label set stays bounded), the response status (0 on transport
// failure), and the call duration. fn may be called concurrently and
// must be fast; feed an obs.Vec to mirror the server's histograms
// client-side.
func WithCallObserver(fn func(route string, status int, d time.Duration)) Option {
	return func(c *Client) { c.observer = fn }
}

// observe reports one finished round trip to the call observer.
func (c *Client) observe(route string, status int, start time.Time) {
	if c.observer != nil {
		c.observer(route, status, time.Since(start))
	}
}

// routeOf collapses a request path to its route pattern so observer
// labels stay low-cardinality under arbitrary IDs and keys.
func routeOf(path string) string {
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}
	switch {
	case strings.HasPrefix(path, "/v1/jobs/"):
		if strings.HasSuffix(path, "/stream") {
			return "/v1/jobs/{id}/stream"
		}
		return "/v1/jobs/{id}"
	case strings.HasPrefix(path, "/v1/trace/"):
		return "/v1/trace/{id}"
	}
	return path
}

// New builds a client for the clusterd instance at baseURL
// ("http://host:8080"). The constructor does not dial the server; the
// first request does.
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: invalid base URL %q", baseURL)
	}
	c := &Client{
		base:          strings.TrimRight(baseURL, "/"),
		hc:            &http.Client{Transport: DefaultTransport},
		minBackoff:    100 * time.Millisecond,
		maxBackoff:    5 * time.Second,
		retries:       5,
		submitRetries: 4,
		rnd:           rand.Float64,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// checkVersion rejects responses that don't advertise the supported wire
// protocol. A missing header means the endpoint isn't a clusterd server
// (or sits behind something that rewrote the response) — equally unsafe
// to decode.
func checkVersion(resp *http.Response) error {
	got := resp.Header.Get(api.VersionHeader)
	if got == "" {
		return fmt.Errorf("%w: response carries no %s header", ErrVersionMismatch, api.VersionHeader)
	}
	if v, err := strconv.Atoi(got); err != nil || v != api.Version {
		return fmt.Errorf("%w: server speaks v%s, this client speaks v%d", ErrVersionMismatch, got, api.Version)
	}
	return nil
}

// apiError decodes a non-2xx response into an *api.Error, falling back to
// a generic error when the body isn't the uniform JSON shape. A
// Retry-After header (integer seconds, as clusterd sends on 429) is
// carried along so callers can honor the server's pacing hint.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e api.Error
	if err := json.Unmarshal(body, &e); err == nil && e.Code != "" {
		e.Status = resp.StatusCode
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
		return &e
	}
	return fmt.Errorf("client: http %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
}

// newRequest builds a request against the server, attaching the bearer
// token when one is configured.
func (c *Client) newRequest(ctx context.Context, method, path string, rd io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	return req, nil
}

// do performs one JSON round trip: marshal body (if any), check the
// protocol version, surface API errors, decode into out (if non-nil).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	return c.doHeaders(ctx, method, path, nil, body, out)
}

// doHeaders is do with extra request headers (the trace-ID header rides
// here).
func (c *Client) doHeaders(ctx context.Context, method, path string, hdr map[string]string, body, out any) error {
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		rd = bytes.NewReader(blob)
	}
	req, err := c.newRequest(ctx, method, path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	start := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		c.observe(routeOf(path), 0, start)
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	c.observe(routeOf(path), resp.StatusCode, start)
	defer resp.Body.Close()
	if err := checkVersion(resp); err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return nil
}

// submitConfig collects per-submission settings: the request body plus
// out-of-band details like the trace-ID and deadline headers.
type submitConfig struct {
	req       api.SubmitRequest
	traceBase string
	deadline  time.Duration
}

// SubmitOption adjusts one submission.
type SubmitOption func(*submitConfig)

// WithMaxParallel caps how many engine workers the batch may occupy on
// the server at once; the server clamps the hint to its own limit. Use
// it to keep a huge batch from monopolizing a shared worker.
func WithMaxParallel(n int) SubmitOption {
	return func(sc *submitConfig) { sc.req.MaxParallel = n }
}

// WithTraceBase seeds the batch's trace-ID base (sent in the
// api.TraceHeader header): the server derives per-job trace IDs as
// "<base>.<index>", so the caller knows every job's trace ID before the
// ack arrives. Invalid bases are ignored server-side (it mints one
// instead); the ack's TraceIDs field is authoritative either way.
func WithTraceBase(base string) SubmitOption {
	return func(sc *submitConfig) { sc.traceBase = base }
}

// WithPriority assigns the batch to a scheduling lane ("interactive" or
// "bulk"; empty means interactive). Bulk batches yield worker slots to
// interactive ones under contention instead of queueing FIFO.
func WithPriority(lane string) SubmitOption {
	return func(sc *submitConfig) { sc.req.Priority = lane }
}

// WithDeadline bounds the batch server-side: jobs not finished within d
// of admission are canceled or shed with code "deadline_exceeded". Sent
// as the api.DeadlineHeader header; non-positive d sends nothing.
func WithDeadline(d time.Duration) SubmitOption {
	return func(sc *submitConfig) { sc.deadline = d }
}

// Submit sends a batch of job specs and returns the submission ack: the
// submission id to stream, each job's result content key, and each
// job's trace ID.
//
// A 429 (rate limit or quota) is retried up to the WithSubmitRetries
// budget, sleeping the server's Retry-After hint or the client's own
// capped-jittered backoff — whichever is longer — between attempts.
// Other errors, including context cancellation, surface immediately.
func (c *Client) Submit(ctx context.Context, specs []engine.JobSpec, opts ...SubmitOption) (*api.SubmitResponse, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("client: empty submission")
	}
	sc := submitConfig{req: api.SubmitRequest{Jobs: specs}}
	for _, o := range opts {
		o(&sc)
	}
	hdr := map[string]string{}
	if sc.traceBase != "" {
		hdr[api.TraceHeader] = sc.traceBase
	}
	if sc.deadline > 0 {
		hdr[api.DeadlineHeader] = strconv.FormatInt(sc.deadline.Milliseconds(), 10)
	}
	for attempt := 0; ; attempt++ {
		var resp api.SubmitResponse
		err := c.doHeaders(ctx, http.MethodPost, "/v1/jobs", hdr, sc.req, &resp)
		if err == nil {
			return &resp, nil
		}
		var apiErr *api.Error
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests || attempt >= c.submitRetries {
			return nil, err
		}
		delay := backoffDelay(attempt+1, c.minBackoff, c.maxBackoff, c.rnd)
		if apiErr.RetryAfter > delay {
			delay = apiErr.RetryAfter
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// SubmitOne submits a single job spec.
func (c *Client) SubmitOne(ctx context.Context, spec engine.JobSpec) (*api.SubmitResponse, error) {
	return c.Submit(ctx, []engine.JobSpec{spec})
}

// Status fetches a submission's progress snapshot.
func (c *Client) Status(ctx context.Context, id string) (*api.StatusResponse, error) {
	var resp api.StatusResponse
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the server's engine and store counters.
func (c *Client) Stats(ctx context.Context) (*api.StatsResponse, error) {
	var resp api.StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health probes the liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Trace fetches a completed job's span tree by trace ID (from a submit
// ack's TraceIDs). Jobs still running — and traces evicted from the
// server's bounded ring — answer not_found; poll after completion.
func (c *Client) Trace(ctx context.Context, id string) (*api.TraceResponse, error) {
	var resp api.TraceResponse
	if err := c.do(ctx, http.MethodGet, "/v1/trace/"+url.PathEscape(id), nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ResultSummary fetches the JSON rendering of a stored result.
func (c *Client) ResultSummary(ctx context.Context, key string) (*api.ResultResponse, error) {
	var resp api.ResultResponse
	path := "/v1/results?key=" + url.QueryEscape(key)
	if err := c.do(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Result fetches a stored result's raw codec blob and decodes it into a
// full *engine.Result (metrics, complexity accounting). The result's
// Simpoint carries identity only — attach the local simpoint if row
// matching matters (Runner does).
func (c *Client) Result(ctx context.Context, key string) (*engine.Result, error) {
	req, err := c.newRequest(ctx, http.MethodGet,
		"/v1/results?raw=1&key="+url.QueryEscape(key), nil)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		c.observe("/v1/results", 0, start)
		return nil, fmt.Errorf("client: fetching result: %w", err)
	}
	c.observe("/v1/results", resp.StatusCode, start)
	defer resp.Body.Close()
	if err := checkVersion(resp); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: reading result blob: %w", err)
	}
	res, err := engine.DecodeResult(blob)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	return res, nil
}

// Stream follows a submission's event stream, invoking fn once per
// completed job, and returns nil once the server reports the submission
// done. Transport failures mid-stream reconnect with exponential backoff;
// the server replays completed events on reconnect and Stream suppresses
// the ones it already delivered, so fn observes each job exactly once.
// fn is called from Stream's goroutine; it must not block indefinitely.
func (c *Client) Stream(ctx context.Context, id string, fn func(api.JobEvent)) error {
	delivered := 0
	failures := 0
	for {
		n, done, err := c.streamOnce(ctx, id, delivered, fn)
		delivered += n
		if done {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// A protocol-level refusal (unknown/expired submission, version
		// mismatch) will not heal by retrying.
		var apiErr *api.Error
		if errors.As(err, &apiErr) || errors.Is(err, ErrVersionMismatch) {
			return err
		}
		if n > 0 {
			failures = 0 // the connection made progress; restart the budget
		}
		failures++
		if failures > c.retries {
			if err == nil {
				err = ErrStreamEnded
			}
			return fmt.Errorf("client: stream failed after %d attempts: %w", failures, err)
		}
		select {
		case <-time.After(backoffDelay(failures, c.minBackoff, c.maxBackoff, c.rnd)):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// streamOnce runs one SSE connection, skipping the first skip result
// events (already delivered on a previous connection). It returns how
// many new events it delivered and whether the server reported done.
func (c *Client) streamOnce(ctx context.Context, id string, skip int, fn func(api.JobEvent)) (delivered int, done bool, err error) {
	req, err := c.newRequest(ctx, http.MethodGet,
		"/v1/jobs/"+url.PathEscape(id)+"/stream", nil)
	if err != nil {
		return 0, false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	start := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		c.observe("/v1/jobs/{id}/stream", 0, start)
		return 0, false, fmt.Errorf("client: opening stream: %w", err)
	}
	// For the SSE route the observed duration is time-to-connect, not
	// stream lifetime — the comparable "how fast does the server answer"
	// number.
	c.observe("/v1/jobs/{id}/stream", resp.StatusCode, start)
	defer resp.Body.Close()
	if err := checkVersion(resp); err != nil {
		return 0, false, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, false, apiError(resp)
	}

	seen := 0
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	event := ""
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "done":
				return delivered, true, nil
			case "result":
				seen++
				if seen <= skip {
					continue // replayed from before the reconnect
				}
				var ev api.JobEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					return delivered, false, fmt.Errorf("client: undecodable event: %w", err)
				}
				fn(ev)
				delivered++
			}
		}
	}
	if err := scanner.Err(); err != nil {
		return delivered, false, fmt.Errorf("client: reading stream: %w", err)
	}
	return delivered, false, nil // EOF before done: caller reconnects
}
