package client

import "time"

// backoffDelay computes the pause before retry attempt number `failures`
// (1-based): exponential doubling from min, capped at max, with the final
// delay drawn uniformly from [nominal/2, nominal). The jitter matters
// operationally — when a clusterd restarts, every runner streaming from
// it fails at the same instant, and without it they all reconnect in
// lockstep on every subsequent beat. rnd must return values in [0, 1).
func backoffDelay(failures int, min, max time.Duration, rnd func() float64) time.Duration {
	if failures < 1 {
		failures = 1
	}
	nominal := min << (failures - 1)
	// The shift overflows past ~60 doublings; <= 0 catches the wrap.
	if nominal > max || nominal <= 0 {
		nominal = max
	}
	half := nominal / 2
	return half + time.Duration(rnd()*float64(nominal-half))
}
