package client

import (
	"testing"
	"time"
)

// Reconnect backoff contract: exponential growth, a hard cap, and jitter
// confined to [nominal/2, nominal). A restarted clusterd must not see N
// runners reconnect in lockstep.

func TestBackoffExponentialGrowth(t *testing.T) {
	// rnd pinned to the top of the jitter window makes the delay equal
	// its nominal value, so growth is exact and assertable.
	top := func() float64 { return 1 - 1e-12 }
	min, max := 100*time.Millisecond, 100*time.Second
	prev := backoffDelay(1, min, max, top)
	if got := prev.Round(time.Millisecond); got != min {
		t.Fatalf("first delay = %v, want %v", got, min)
	}
	for f := 2; f <= 8; f++ {
		d := backoffDelay(f, min, max, top)
		if got, want := d.Round(time.Millisecond), 2*prev.Round(time.Millisecond); got != want {
			t.Fatalf("failures=%d: delay = %v, want double the previous (%v)", f, got, want)
		}
		prev = d
	}
}

func TestBackoffCap(t *testing.T) {
	top := func() float64 { return 1 - 1e-12 }
	min, max := 100*time.Millisecond, 2*time.Second
	for f := 5; f <= 200; f += 13 { // runs far past shift-overflow territory
		if d := backoffDelay(f, min, max, top); d > max {
			t.Fatalf("failures=%d: delay %v exceeds cap %v", f, d, max)
		}
	}
	// At the cap the full jitter window still applies.
	if d := backoffDelay(100, min, max, func() float64 { return 0 }); d != max/2 {
		t.Fatalf("capped delay at rnd=0: %v, want %v", d, max/2)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	min, max := 100*time.Millisecond, 10*time.Second
	for f := 1; f <= 6; f++ {
		nominal := min << (f - 1)
		for _, r := range []float64{0, 0.25, 0.5, 0.999999} {
			rv := r
			d := backoffDelay(f, min, max, func() float64 { return rv })
			if d < nominal/2 || d >= nominal {
				t.Fatalf("failures=%d rnd=%v: delay %v outside [%v, %v)",
					f, r, d, nominal/2, nominal)
			}
		}
	}
}

func TestBackoffSpread(t *testing.T) {
	// Distinct rnd draws must yield distinct delays — the anti-lockstep
	// property itself, not just the bounds.
	min, max := 100*time.Millisecond, 10*time.Second
	a := backoffDelay(4, min, max, func() float64 { return 0.1 })
	b := backoffDelay(4, min, max, func() float64 { return 0.9 })
	if a == b {
		t.Fatalf("different jitter draws produced identical delays (%v)", a)
	}
}

func TestBackoffDegenerateFailures(t *testing.T) {
	// Out-of-range failure counts clamp instead of shifting negatively.
	min, max := 100*time.Millisecond, time.Second
	for _, f := range []int{0, -3} {
		d := backoffDelay(f, min, max, func() float64 { return 0 })
		if d != min/2 {
			t.Fatalf("failures=%d: delay %v, want %v", f, d, min/2)
		}
	}
}
