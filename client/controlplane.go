// Control-plane calls (protocol v3): key enumeration, raw result
// fetch/upload, and the coordinator's ring register. These are what let
// *Client satisfy the controlplane package's CoordClient, Source, and
// Sink interfaces — a fleet drains, backfills, and coordinates through
// the same typed SDK it submits jobs with.
package client

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"clustersim/internal/api"
)

// Keys fetches one page of the worker's stored logical keys. limit caps
// the page size (0 accepts the server's default); cursor is "" for the
// first page and the previous page's next value afterwards. The
// returned next cursor is "" when the listing is exhausted.
func (c *Client) Keys(ctx context.Context, limit int, cursor string) (keys []string, next string, err error) {
	path := "/v1/keys"
	q := url.Values{}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var resp api.KeysResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, "", err
	}
	return resp.Keys, resp.Next, nil
}

// RawResult fetches a stored result's encoded codec blob verbatim — the
// bytes a drain or backfill re-uploads to another worker, kept opaque so
// the migration is byte-exact whatever codec version wrote them.
func (c *Client) RawResult(ctx context.Context, key string) ([]byte, error) {
	req, err := c.newRequest(ctx, http.MethodGet,
		"/v1/results?raw=1&key="+url.QueryEscape(key), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: fetching result blob: %w", err)
	}
	defer resp.Body.Close()
	if err := checkVersion(resp); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: reading result blob: %w", err)
	}
	return blob, nil
}

// PutResult uploads one encoded result blob under its logical key. The
// server validates that the blob decodes before storing it.
func (c *Client) PutResult(ctx context.Context, key string, blob []byte) error {
	req, err := c.newRequest(ctx, http.MethodPut,
		"/v1/results?key="+url.QueryEscape(key), bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: uploading result: %w", err)
	}
	defer resp.Body.Close()
	if err := checkVersion(resp); err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Ring fetches a coordinator's current membership view.
func (c *Client) Ring(ctx context.Context) (*api.RingView, error) {
	var view api.RingView
	if err := c.do(ctx, http.MethodGet, "/v1/ring", nil, &view); err != nil {
		return nil, err
	}
	return &view, nil
}

// ProposeRing compare-and-swaps one membership transition against the
// coordinator's epoch. On success it returns the view the transition
// produced; a stale base epoch comes back as an *api.Error with code
// api.CodeEpochConflict (and a nil view — re-sync with Ring and retry).
func (c *Client) ProposeRing(ctx context.Context, t api.RingTransition) (*api.RingView, error) {
	var view api.RingView
	if err := c.do(ctx, http.MethodPost, "/v1/ring", t, &view); err != nil {
		return nil, err
	}
	return &view, nil
}
