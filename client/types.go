package client

import "clustersim/internal/api"

// The wire types are defined once in internal/api (shared with the
// server so the protocol can't drift) and aliased here so code outside
// this module can name them: a Stream callback is written as
// func(ev client.JobEvent), and server failures branch on *client.APIError
// and the Code* constants.
type (
	// JobEvent is one completed job as delivered by Stream and listed in
	// a StatusResponse.
	JobEvent = api.JobEvent
	// SubmitResponse acknowledges a submission (id, per-job result keys).
	SubmitResponse = api.SubmitResponse
	// StatusResponse is a submission progress snapshot.
	StatusResponse = api.StatusResponse
	// ResultResponse is the JSON rendering of a stored result.
	ResultResponse = api.ResultResponse
	// StatsResponse reports engine and per-tier store counters.
	StatsResponse = api.StatsResponse
	// APIError is the typed error decoded from every non-2xx response;
	// its Code field is stable across releases.
	APIError = api.Error
)

// Stable error codes carried by APIError.Code.
const (
	CodeBadRequest       = api.CodeBadRequest
	CodeNotFound         = api.CodeNotFound
	CodeMethodNotAllowed = api.CodeMethodNotAllowed
	CodeUnauthorized     = api.CodeUnauthorized
	CodeInternal         = api.CodeInternal
)

// APIVersion is the wire-protocol version this client speaks; servers
// advertising any other version are rejected with ErrVersionMismatch.
const APIVersion = api.Version
