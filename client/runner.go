// Runner adapts a Client to the engine.Runner interface: jobs are
// converted to declarative JobSpecs, shipped to clusterd in one batch per
// Stream call, followed over SSE, and their full results fetched back by
// content key through the engine codec. Everything written against
// engine.Runner — sim.RunMatrixOn, the experiment harness, steerbench —
// therefore runs against a clusterd fleet unchanged.
package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"clustersim/internal/api"
	"clustersim/internal/engine"
	"clustersim/internal/obs"
	"clustersim/internal/sim"
)

// Runner executes engine jobs on a remote clusterd instance. Jobs with no
// declarative wire form (custom annotate/policy closures, machine tweaks,
// non-suite workloads) are routed to the optional local fallback runner;
// without one they fail with the conversion error. Safe for concurrent
// use.
type Runner struct {
	c           *Client
	local       engine.Runner
	progress    func(done, total int, label string)
	maxParallel int
	tracer      *obs.Tracer

	submitted, completed atomic.Int64

	baseOnce sync.Once
	baseline engine.CacheStats // server counters when this runner first ran
}

// JobError is a job-level failure the server reported in a completion
// event: the worker was reachable and executed (or refused) the job, and
// the failure is deterministic — resubmitting the job elsewhere would
// fail identically. Transport failures are never JobErrors, which is how
// multi-worker runners tell a lost worker from a genuinely failing job.
type JobError struct {
	// Message is the server-reported failure text.
	Message string
}

// Error implements the error interface.
func (e *JobError) Error() string { return "clusterd: " + e.Message }

// RunnerOption configures a Runner.
type RunnerOption func(*Runner)

// WithFallback routes jobs that cannot travel (no declarative spec) to a
// local runner instead of failing them. steerbench uses a private local
// engine here so ablations with machine-tweak closures still run.
func WithFallback(local engine.Runner) RunnerOption {
	return func(r *Runner) { r.local = local }
}

// WithProgress mirrors engine.Options.Progress: fn is called after every
// finished job with the runner-lifetime completed and submitted counts.
// It may be called concurrently.
func WithProgress(fn func(done, total int, label string)) RunnerOption {
	return func(r *Runner) { r.progress = fn }
}

// WithBatchParallel forwards a per-batch parallelism hint with every
// submission this runner makes: the server caps how many of its workers
// the batch occupies at once (clamped to the server's own limit). Useful
// when several runners share one worker and none should monopolize it.
func WithBatchParallel(n int) RunnerOption {
	return func(r *Runner) { r.maxParallel = n }
}

// WithRunnerTracer records one client-side flight per remote batch
// (spans: submit, stream, and one fetch per result) into t, under the
// same trace-ID base the server derives per-job IDs from — so a
// steerbench -trace-out timeline lines the client's view up against
// the workers' span trees.
func WithRunnerTracer(t *obs.Tracer) RunnerOption {
	return func(r *Runner) { r.tracer = t }
}

// NewRunner wraps a Client as an engine.Runner.
func NewRunner(c *Client, opts ...RunnerOption) *Runner {
	r := &Runner{c: c}
	for _, o := range opts {
		o(r)
	}
	return r
}

var _ engine.Runner = (*Runner)(nil)

// captureBaseline snapshots the server's lifetime counters the first time
// the runner does work, so Stats can report this runner's share.
func (r *Runner) captureBaseline(ctx context.Context) {
	r.baseOnce.Do(func() {
		if st, err := r.c.Stats(ctx); err == nil {
			r.baseline = st.Engine
		}
	})
}

// Run executes one job and blocks until its result is available.
func (r *Runner) Run(ctx context.Context, job engine.Job) *engine.Result {
	for jr := range r.Stream(ctx, []engine.Job{job}) {
		return jr.Result
	}
	// Unreachable: Stream always yields one result per job.
	return &engine.Result{Simpoint: job.Simpoint, Setup: job.Setup.Label,
		Err: errors.New("client: stream yielded no result")}
}

// Stream submits the jobs and returns a channel yielding each result as
// it completes. Remote-able jobs travel as one batch submission; the rest
// go to the local fallback concurrently. The channel is buffered to hold
// every result and closed once all jobs finish.
func (r *Runner) Stream(ctx context.Context, jobs []engine.Job) <-chan engine.JobResult {
	out := make(chan engine.JobResult, len(jobs))
	r.submitted.Add(int64(len(jobs)))
	go func() {
		defer close(out)
		r.captureBaseline(ctx)

		// Partition: jobs with a wire form go remote, the rest local.
		var specs []engine.JobSpec
		var remoteIdx []int
		var localJobs []engine.Job
		var localIdx []int
		for i, job := range jobs {
			spec, err := sim.SpecFromJob(job)
			switch {
			case err == nil:
				specs = append(specs, spec)
				remoteIdx = append(remoteIdx, i)
			case r.local != nil:
				localJobs = append(localJobs, jobs[i])
				localIdx = append(localIdx, i)
			default:
				out <- r.finish(engine.JobResult{Index: i, Job: jobs[i], Result: &engine.Result{
					Simpoint: jobs[i].Simpoint, Setup: jobs[i].Setup.Label,
					Err: fmt.Errorf("client: job not remoteable and no local fallback: %w", err),
				}})
			}
		}

		var wg sync.WaitGroup
		if len(localJobs) > 0 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for jr := range r.local.Stream(ctx, localJobs) {
					out <- r.finish(engine.JobResult{
						Index: localIdx[jr.Index], Job: jr.Job, Result: jr.Result,
					})
				}
			}()
		}
		if len(specs) > 0 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				r.streamRemote(ctx, jobs, specs, remoteIdx, out)
			}()
		}
		wg.Wait()
	}()
	return out
}

// streamRemote runs one batch submission end-to-end: submit, follow the
// SSE stream, fetch each completed job's full result by key. Jobs whose
// events never arrive (stream failure, cancellation) are reported with
// the stream's error so every submitted job yields exactly one result.
func (r *Runner) streamRemote(ctx context.Context, jobs []engine.Job, specs []engine.JobSpec, remoteIdx []int, out chan<- engine.JobResult) {
	fail := func(err error) {
		for _, idx := range remoteIdx {
			out <- r.finish(engine.JobResult{Index: idx, Job: jobs[idx], Result: &engine.Result{
				Simpoint: jobs[idx].Simpoint, Setup: jobs[idx].Setup.Label, Err: err,
			}})
		}
	}
	// Propagate the caller's trace ID as the batch's base when the
	// context carries one, else mint a fresh base, so the server's
	// per-job IDs ("<base>.<index>") are known here up front.
	base := obs.TraceIDFrom(ctx)
	if !obs.ValidTraceID(base) {
		base = obs.NewTraceID()
	}
	fl := r.tracer.StartFlight(obs.WithTraceID(ctx, base), fmt.Sprintf("batch[%d]", len(specs)))
	defer fl.End()
	var sopts []SubmitOption
	if r.maxParallel > 0 {
		sopts = append(sopts, WithMaxParallel(r.maxParallel))
	}
	sopts = append(sopts, WithTraceBase(base))
	t0 := fl.Begin()
	sub, err := r.c.Submit(ctx, specs, sopts...)
	fl.Span("submit", t0)
	if err != nil {
		fail(err)
		return
	}
	if sub.Total != len(specs) || len(sub.Keys) != len(specs) {
		fail(fmt.Errorf("client: server accepted %d of %d jobs", sub.Total, len(specs)))
		return
	}

	// Fetch results concurrently as their completion events arrive; the
	// semaphore keeps a wide batch from opening unbounded connections.
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	arrived := make([]bool, len(specs))
	t0 = fl.Begin()
	streamErr := r.c.Stream(ctx, sub.ID, func(ev api.JobEvent) {
		if ev.Index < 0 || ev.Index >= len(specs) || arrived[ev.Index] {
			return // defensive: out-of-range or duplicate event
		}
		arrived[ev.Index] = true
		idx := remoteIdx[ev.Index]
		job := jobs[idx]
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			tf := fl.Begin()
			res := r.fetch(ctx, job, ev)
			fl.Span("fetch", tf)
			out <- r.finish(engine.JobResult{Index: idx, Job: job, Result: res})
		}()
	})
	fl.Span("stream", t0)
	wg.Wait()
	if streamErr == nil {
		streamErr = errors.New("client: stream completed with missing results")
	}
	for i, ok := range arrived {
		if ok {
			continue
		}
		idx := remoteIdx[i]
		out <- r.finish(engine.JobResult{Index: idx, Job: jobs[idx], Result: &engine.Result{
			Simpoint: jobs[idx].Simpoint, Setup: jobs[idx].Setup.Label, Err: streamErr,
		}})
	}
}

// fetch turns one completion event into a full result: failures surface
// as error results, successes are fetched by key and re-bound to the
// submitting job's simpoint so result rows match the local suite.
func (r *Runner) fetch(ctx context.Context, job engine.Job, ev api.JobEvent) *engine.Result {
	if ev.Error != "" {
		return &engine.Result{Simpoint: job.Simpoint, Setup: job.Setup.Label,
			Err: &JobError{Message: ev.Error}}
	}
	if ev.Key == "" {
		return &engine.Result{Simpoint: job.Simpoint, Setup: job.Setup.Label,
			Err: errors.New("client: server reported success but no result key")}
	}
	res, err := r.c.Result(ctx, ev.Key)
	if err != nil {
		return &engine.Result{Simpoint: job.Simpoint, Setup: job.Setup.Label, Err: err}
	}
	res.Simpoint = job.Simpoint
	return res
}

// finish updates the runner-lifetime progress counters around a result.
func (r *Runner) finish(jr engine.JobResult) engine.JobResult {
	done := r.completed.Add(1)
	if r.progress != nil {
		label := ""
		if jr.Job.Simpoint != nil {
			label = jr.Job.Simpoint.Name + "/" + jr.Job.Setup.Label
		}
		r.progress(int(done), int(r.submitted.Load()), label)
	}
	return jr
}

// Stats reports the work attributable to this runner: the server's
// counter deltas since the runner first submitted, plus the local
// fallback's counters when one is configured. A stats fetch failure
// degrades to the local half alone.
func (r *Runner) Stats() engine.CacheStats {
	var remote engine.CacheStats
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// The Once both sets the baseline for a runner that never ran (delta
	// 0, correctly "no work attributable") and orders this read of
	// r.baseline after a concurrent Stream's write.
	r.captureBaseline(ctx)
	if st, err := r.c.Stats(ctx); err == nil {
		remote = st.Engine.Delta(r.baseline)
	}
	if r.local != nil {
		return remote.Add(r.local.Stats())
	}
	return remote
}
