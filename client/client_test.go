package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"clustersim/client"
	"clustersim/internal/api"
	"clustersim/internal/engine"
	"clustersim/internal/pipeline"
	"clustersim/internal/service"
	"clustersim/internal/sim"
	"clustersim/internal/store"
	"clustersim/internal/workload"
)

// startServer builds a clusterd-shaped stack behind httptest and a client
// pointed at it.
func startServer(t *testing.T) (*httptest.Server, *client.Client, *engine.Engine) {
	t.Helper()
	disk, err := store.OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	st := store.NewTiered(store.NewMemory(64<<20), disk)
	eng := engine.New(engine.Options{Parallelism: 2, ResultStore: st})
	ts := httptest.NewServer(service.New(context.Background(), eng, st))
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL, client.WithBackoff(10*time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	return ts, c, eng
}

// The full SDK round trip: submit a batch, stream every completion
// exactly once, fetch a full result by key, and read stats.
func TestSubmitStreamFetchRoundTrip(t *testing.T) {
	_, c, _ := startServer(t)
	ctx := context.Background()

	specs := []engine.JobSpec{
		{Simpoint: "gzip-1", Setup: engine.SetupSpec{Kind: "OP", NumClusters: 2}, Opts: engine.OptionsSpec{NumUops: 3000}},
		{Simpoint: "gzip-1", Setup: engine.SetupSpec{Kind: "VC", NumVC: 2, NumClusters: 2}, Opts: engine.OptionsSpec{NumUops: 3000}},
	}
	sub, err := c.Submit(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Total != 2 || len(sub.Keys) != 2 || sub.Keys[0] == "" {
		t.Fatalf("submit ack: %+v", sub)
	}

	seen := map[int]api.JobEvent{}
	if err := c.Stream(ctx, sub.ID, func(ev api.JobEvent) {
		if _, dup := seen[ev.Index]; dup {
			t.Errorf("event %d delivered twice", ev.Index)
		}
		seen[ev.Index] = ev
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0].Error != "" || seen[1].Error != "" {
		t.Fatalf("streamed events: %+v", seen)
	}

	res, err := c.Result(ctx, sub.Keys[1])
	if err != nil {
		t.Fatal(err)
	}
	if res.Setup != "VC" || res.Metrics == nil || res.Metrics.Cycles != seen[1].Cycles {
		t.Fatalf("fetched result: %+v", res)
	}
	summary, err := c.ResultSummary(ctx, sub.Keys[1])
	if err != nil {
		t.Fatal(err)
	}
	if summary.Cycles != res.Metrics.Cycles || summary.Simpoint != "gzip-1" {
		t.Fatalf("summary: %+v", summary)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Engine.Simulations != 2 || st.Disk == nil {
		t.Fatalf("stats: %+v", st)
	}
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}

	// Unknown keys surface the typed error with its stable code.
	_, err = c.Result(ctx, "absent")
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound || apiErr.Status != http.StatusNotFound {
		t.Fatalf("absent key error: %v", err)
	}
}

// A remote runner must produce results that are indistinguishable from a
// local engine's — same metrics, same complexity accounting, same
// simpoint rows — because reports are rendered from them byte for byte.
func TestRunnerMatchesLocalEngine(t *testing.T) {
	_, c, _ := startServer(t)
	ctx := context.Background()

	sps := []*workload.Simpoint{workload.ByName("gzip-1"), workload.ByName("mcf")}
	setups := []sim.Setup{sim.SetupOP(2), sim.SetupVC(2, 2)}
	opt := sim.RunOptions{NumUops: 3000}

	remote := client.NewRunner(c)
	got, err := engine.RunMatrixOn(ctx, remote, sps, setups, opt)
	if err != nil {
		t.Fatal(err)
	}
	local := engine.New(engine.Options{Parallelism: 2})
	want, err := engine.RunMatrixOn(ctx, local, sps, setups, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sps {
		for j := range setups {
			g, w := got[i][j], want[i][j]
			if g.Err != nil || w.Err != nil {
				t.Fatalf("cell %d/%d errs: %v %v", i, j, g.Err, w.Err)
			}
			if g.Simpoint != sps[i] {
				t.Errorf("cell %d/%d: result not re-bound to the submitted simpoint", i, j)
			}
			if !reflect.DeepEqual(g.Metrics, w.Metrics) {
				t.Errorf("cell %d/%d: metrics diverge:\nremote %+v\nlocal  %+v", i, j, g.Metrics, w.Metrics)
			}
			if !reflect.DeepEqual(g.Complexity, w.Complexity) {
				t.Errorf("cell %d/%d: complexity diverges", i, j)
			}
		}
	}

	// Rerunning the same matrix executes nothing new on the server, and
	// the runner's delta stats say so.
	fresh := client.NewRunner(c)
	if _, err := engine.RunMatrixOn(ctx, fresh, sps, setups, opt); err != nil {
		t.Fatal(err)
	}
	if st := fresh.Stats(); st.Simulations != 0 {
		t.Errorf("second remote run executed %d simulations, want 0", st.Simulations)
	}
}

// Jobs with no declarative wire form route to the local fallback; without
// one they fail loudly instead of silently simulating the wrong thing.
func TestRunnerFallback(t *testing.T) {
	_, c, serverEng := startServer(t)
	ctx := context.Background()
	sp := workload.ByName("gzip-1")
	tweaked := engine.Job{
		Simpoint: sp,
		Setup:    sim.SetupOP(2),
		Opts: engine.RunOptions{NumUops: 2000, TweakKey: "lat9",
			MachineTweak: func(cfg *pipeline.Config) { cfg.Net.Latency = 9 }},
	}

	bare := client.NewRunner(c)
	if res := bare.Run(ctx, tweaked); res.Err == nil {
		t.Fatal("non-remoteable job succeeded without a fallback")
	}

	local := engine.New(engine.Options{Parallelism: 1})
	hybrid := client.NewRunner(c, client.WithFallback(local))
	res := hybrid.Run(ctx, tweaked)
	if res.Err != nil {
		t.Fatalf("fallback run: %v", res.Err)
	}
	if serverEng.Stats().Simulations != 0 {
		t.Errorf("tweaked job leaked to the server")
	}
	if local.Stats().Simulations != 1 {
		t.Errorf("tweaked job did not run on the fallback engine")
	}
}

// Canceling the context mid-stream unblocks every pending job with the
// context's error and closes the runner's channel.
func TestStreamContextCancellation(t *testing.T) {
	_, c, _ := startServer(t)
	ctx, cancel := context.WithCancel(context.Background())

	sps := []*workload.Simpoint{workload.ByName("gzip-1"), workload.ByName("mcf"),
		workload.ByName("crafty"), workload.ByName("swim")}
	jobs := make([]engine.Job, len(sps))
	for i, sp := range sps {
		jobs[i] = engine.Job{Simpoint: sp, Setup: sim.SetupVC(2, 2), Opts: engine.RunOptions{NumUops: 120_000}}
	}
	r := client.NewRunner(c)
	out := r.Stream(ctx, jobs)
	cancel()

	done := make(chan struct{})
	var results []engine.JobResult
	go func() {
		defer close(done)
		for jr := range out {
			results = append(results, jr)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stream did not unwind after cancellation")
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}

	// The client-side Stream call itself reports the context error.
	sub, err := c.Submit(context.Background(), []engine.JobSpec{
		{Simpoint: "gzip-1", Setup: engine.SetupSpec{Kind: "OP", NumClusters: 2}, Opts: engine.OptionsSpec{NumUops: 120_000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- c.Stream(ctx2, sub.ID, func(api.JobEvent) {}) }()
	cancel2()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("stream error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Stream did not return after cancellation")
	}
}

// abortingStream wraps the service handler and kills the first stream
// connection right after its first flush, simulating a transport drop;
// the client must reconnect and still deliver every event exactly once.
type abortingStream struct {
	inner   http.Handler
	streams atomic.Int64
}

type abortAfterFlush struct {
	http.ResponseWriter
	armed bool
}

func (w *abortAfterFlush) Flush() {
	if w.armed {
		// Drop the connection with the second flush's payload (the done
		// event) still unflushed: the client sees EOF mid-stream.
		panic(http.ErrAbortHandler)
	}
	w.armed = true
	w.ResponseWriter.(http.Flusher).Flush()
}

func (h *abortingStream) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/v1/stats" && r.URL.Query().Get("raw") == "" &&
		len(r.URL.Path) > len("/stream") && r.URL.Path[len(r.URL.Path)-len("/stream"):] == "/stream" {
		if h.streams.Add(1) == 1 {
			h.inner.ServeHTTP(&abortAfterFlush{ResponseWriter: w}, r)
			return
		}
	}
	h.inner.ServeHTTP(w, r)
}

func TestStreamReconnectAfterDrop(t *testing.T) {
	disk, err := store.OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	st := store.NewTiered(store.NewMemory(64<<20), disk)
	eng := engine.New(engine.Options{Parallelism: 2, ResultStore: st})
	flaky := &abortingStream{inner: service.New(context.Background(), eng, st)}
	ts := httptest.NewServer(flaky)
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL, client.WithBackoff(5*time.Millisecond, 20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	sub, err := c.Submit(ctx, []engine.JobSpec{
		{Simpoint: "gzip-1", Setup: engine.SetupSpec{Kind: "OP", NumClusters: 2}, Opts: engine.OptionsSpec{NumUops: 2000}},
		{Simpoint: "mcf", Setup: engine.SetupSpec{Kind: "OP", NumClusters: 2}, Opts: engine.OptionsSpec{NumUops: 2000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Let the submission finish so the first (aborted) connection replays
	// events and then dies before "done".
	deadline := time.Now().Add(60 * time.Second)
	for {
		status, err := c.Status(ctx, sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if status.Done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submission never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}

	seen := map[int]int{}
	if err := c.Stream(ctx, sub.ID, func(ev api.JobEvent) { seen[ev.Index]++ }); err != nil {
		t.Fatalf("stream with reconnect: %v", err)
	}
	if h := flaky.streams.Load(); h < 2 {
		t.Fatalf("stream was never dropped and retried (%d connections)", h)
	}
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 1 {
		t.Fatalf("events not delivered exactly once: %v", seen)
	}
}

// Version-mismatched and malformed server responses are rejected with
// typed errors instead of being half-decoded.
func TestServerResponseValidation(t *testing.T) {
	ctx := context.Background()

	// Wrong protocol version.
	wrongVer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.VersionHeader, strconv.Itoa(api.Version+1))
		fmt.Fprint(w, `{}`)
	}))
	t.Cleanup(wrongVer.Close)
	c1, _ := client.New(wrongVer.URL)
	if _, err := c1.Stats(ctx); !errors.Is(err, client.ErrVersionMismatch) {
		t.Errorf("wrong version accepted: %v", err)
	}
	if err := c1.Health(ctx); !errors.Is(err, client.ErrVersionMismatch) {
		t.Errorf("health ignored version: %v", err)
	}

	// No version header at all (not a clusterd server).
	unversioned := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"id":"sub-1","keys":[""],"total":1}`)
	}))
	t.Cleanup(unversioned.Close)
	c2, _ := client.New(unversioned.URL)
	if _, err := c2.Submit(ctx, []engine.JobSpec{{Simpoint: "gzip-1", Setup: engine.SetupSpec{Kind: "OP"}}}); !errors.Is(err, client.ErrVersionMismatch) {
		t.Errorf("unversioned response accepted: %v", err)
	}

	// Right version, garbage JSON body.
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.VersionHeader, strconv.Itoa(api.Version))
		fmt.Fprint(w, `{"id": 42`)
	}))
	t.Cleanup(garbage.Close)
	c3, _ := client.New(garbage.URL)
	if _, err := c3.Stats(ctx); err == nil || errors.Is(err, client.ErrVersionMismatch) {
		t.Errorf("garbage body: %v", err)
	}

	// Right version, garbage SSE event payload: Stream must fail cleanly,
	// not call fn with junk.
	badSSE := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.VersionHeader, strconv.Itoa(api.Version))
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "event: result\ndata: {not json}\n\n")
	}))
	t.Cleanup(badSSE.Close)
	c4, _ := client.New(badSSE.URL, client.WithBackoff(time.Millisecond, 2*time.Millisecond), client.WithRetries(1))
	calls := 0
	if err := c4.Stream(ctx, "sub-1", func(api.JobEvent) { calls++ }); err == nil {
		t.Error("garbage SSE accepted")
	}
	if calls != 0 {
		t.Errorf("fn called %d times on garbage events", calls)
	}

	// An undecodable result blob (wrong codec version) errors.
	badBlob := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.VersionHeader, strconv.Itoa(api.Version))
		w.Write([]byte{0xC5, 99, 2, 0, 0})
	}))
	t.Cleanup(badBlob.Close)
	c5, _ := client.New(badBlob.URL)
	if _, err := c5.Result(ctx, "k"); !errors.Is(err, engine.ErrCodecVersion) {
		t.Errorf("bad blob error: %v", err)
	}

	// Streaming an unknown submission is a terminal API error — no retry
	// storm against a 404.
	_, real, _ := startServer(t)
	var apiErr *api.Error
	if err := real.Stream(ctx, "sub-404", func(api.JobEvent) {}); !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound {
		t.Errorf("unknown submission stream: %v", err)
	}

	if _, err := client.New("not a url"); err == nil {
		t.Error("bad base URL accepted")
	}
}

// The SDK attaches the configured bearer token on every path — JSON
// round trips, the raw result fetch and the SSE stream — and without it
// surfaces the typed unauthorized error instead of retrying.
func TestClientBearerToken(t *testing.T) {
	st := store.NewTiered(store.NewMemory(64<<20), store.NewMemory(64<<20))
	eng := engine.New(engine.Options{Parallelism: 2, ResultStore: st})
	svc := service.New(context.Background(), eng, st)
	svc.SetToken("sesame")
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	ctx := context.Background()

	locked, _ := client.New(ts.URL)
	var apiErr *api.Error
	if _, err := locked.Stats(ctx); !errors.As(err, &apiErr) || apiErr.Code != api.CodeUnauthorized {
		t.Fatalf("tokenless stats error: %v", err)
	}
	if err := locked.Stream(ctx, "sub-1", func(api.JobEvent) {}); !errors.As(err, &apiErr) || apiErr.Code != api.CodeUnauthorized {
		t.Fatalf("tokenless stream error: %v", err)
	}
	// Health stays open so fleet liveness probes work without credentials.
	if err := locked.Health(ctx); err != nil {
		t.Fatalf("health demanded credentials: %v", err)
	}

	c, err := client.New(ts.URL, client.WithToken("sesame"))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Submit(ctx, []engine.JobSpec{
		{Simpoint: "gzip-1", Setup: engine.SetupSpec{Kind: "OP", NumClusters: 2}, Opts: engine.OptionsSpec{NumUops: 2000}},
	}, client.WithMaxParallel(1))
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	if err := c.Stream(ctx, sub.ID, func(api.JobEvent) { events++ }); err != nil {
		t.Fatal(err)
	}
	if events != 1 {
		t.Fatalf("streamed %d events, want 1", events)
	}
	if _, err := c.Result(ctx, sub.Keys[0]); err != nil {
		t.Fatalf("authenticated raw fetch: %v", err)
	}
}

// Submit retries 429s within its budget, honoring the server's
// Retry-After when given, and surfaces the typed rejection — hint
// attached — when the budget runs out.
func TestSubmitRetriesRateLimit(t *testing.T) {
	ctx := context.Background()
	specs := []engine.JobSpec{{Simpoint: "gzip-1", Setup: engine.SetupSpec{Kind: "OP", NumClusters: 2}}}

	var attempts atomic.Int64
	relenting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.VersionHeader, strconv.Itoa(api.Version))
		if attempts.Add(1) < 3 {
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintf(w, `{"code":%q,"message":"slow down"}`, api.CodeRateLimited)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"sub-1","keys":["k"],"total":1}`)
	}))
	t.Cleanup(relenting.Close)
	c, err := client.New(relenting.URL, client.WithBackoff(time.Millisecond, 4*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Submit(ctx, specs)
	if err != nil {
		t.Fatalf("submit through transient 429s: %v", err)
	}
	if sub.ID != "sub-1" || attempts.Load() != 3 {
		t.Fatalf("id=%q after %d attempts, want sub-1 after 3", sub.ID, attempts.Load())
	}

	// Budget zero: the rejection surfaces immediately with the parsed
	// Retry-After hint, and no retry fires.
	var hard atomic.Int64
	wall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hard.Add(1)
		w.Header().Set(api.VersionHeader, strconv.Itoa(api.Version))
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprintf(w, `{"code":%q,"message":"quota full"}`, api.CodeQuotaExceeded)
	}))
	t.Cleanup(wall.Close)
	c2, err := client.New(wall.URL, client.WithSubmitRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	var apiErr *api.Error
	if _, err := c2.Submit(ctx, specs); !errors.As(err, &apiErr) ||
		apiErr.Code != api.CodeQuotaExceeded || apiErr.RetryAfter != 7*time.Second {
		t.Fatalf("exhausted budget error: %v", err)
	}
	if hard.Load() != 1 {
		t.Fatalf("server saw %d attempts with a zero budget, want 1", hard.Load())
	}
}

// Priority and deadline submit options ride the wire: priority in the
// request body, the deadline as the api.DeadlineHeader header.
func TestSubmitPriorityAndDeadlineOnWire(t *testing.T) {
	var gotPriority, gotDeadline string
	echo := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req api.SubmitRequest
		json.NewDecoder(r.Body).Decode(&req)
		gotPriority, gotDeadline = req.Priority, r.Header.Get(api.DeadlineHeader)
		w.Header().Set(api.VersionHeader, strconv.Itoa(api.Version))
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"sub-1","keys":["k"],"total":1}`)
	}))
	t.Cleanup(echo.Close)
	c, err := client.New(echo.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(context.Background(),
		[]engine.JobSpec{{Simpoint: "gzip-1", Setup: engine.SetupSpec{Kind: "OP", NumClusters: 2}}},
		client.WithPriority("bulk"), client.WithDeadline(1500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if gotPriority != "bulk" || gotDeadline != "1500" {
		t.Fatalf("wire carried priority=%q deadline=%q, want bulk/1500", gotPriority, gotDeadline)
	}
}
