// scalability reproduces the paper's §5.4 scenario: moving from two to
// four clusters, comparing the hybrid's two virtual-cluster configurations
// — VC(4→4) (four virtual clusters) and VC(2→4) (two virtual clusters
// mapped onto four physical ones) — against OP, OB and RHOP.
package main

import (
	"fmt"
	"log"

	"clustersim"
)

func run(workloads []*clustersim.Workload, setups []clustersim.Setup, uops int) []float64 {
	results := clustersim.RunMatrix(workloads, setups, clustersim.RunOptions{NumUops: uops}, 0)
	avgs := make([]float64, len(setups))
	for i := range workloads {
		base := results[i][0]
		if base.Err != nil {
			log.Fatal(base.Err)
		}
		for j := 1; j < len(setups); j++ {
			if results[i][j].Err != nil {
				log.Fatal(results[i][j].Err)
			}
			avgs[j] += (float64(results[i][j].Metrics.Cycles)/float64(base.Metrics.Cycles) - 1) * 100
		}
	}
	for j := range avgs {
		avgs[j] /= float64(len(workloads))
	}
	return avgs
}

func main() {
	workloads := clustersim.QuickWorkloads()
	const uops = 60_000

	fmt.Println("2-cluster machine (slowdown vs OP):")
	setups2 := []clustersim.Setup{
		clustersim.SetupOP(2), clustersim.SetupOB(2), clustersim.SetupRHOP(2), clustersim.SetupVC(2, 2),
	}
	avg2 := run(workloads, setups2, uops)
	for j := 1; j < len(setups2); j++ {
		fmt.Printf("  %-10s %+6.2f%%\n", setups2[j].Label, avg2[j])
	}

	fmt.Println("\n4-cluster machine (slowdown vs OP):")
	setups4 := []clustersim.Setup{
		clustersim.SetupOP(4), clustersim.SetupOB(4), clustersim.SetupRHOP(4),
		clustersim.SetupVC(4, 4), clustersim.SetupVC(2, 4),
	}
	avg4 := run(workloads, setups4, uops)
	for j := 1; j < len(setups4); j++ {
		fmt.Printf("  %-10s %+6.2f%%\n", setups4[j].Label, avg4[j])
	}

	fmt.Println("\npaper 4-cluster averages: OB 12.45%, RHOP 12.69%, VC(4->4) 12.96%, VC(2->4) 3.64%")
	fmt.Println("(the paper's headline: two virtual clusters suffice even on four physical clusters,")
	fmt.Println(" because coarser virtual clusters keep critical dependence chains whole)")
}
