// Quickstart: simulate one SPEC-like workload under the paper's hybrid
// virtual-cluster steering and print the headline metrics.
package main

import (
	"fmt"
	"log"

	"clustersim"
)

func main() {
	// Pick a workload from the synthetic CPU2000 suite.
	w := clustersim.WorkloadByName("gzip-1")
	if w == nil {
		log.Fatal("workload not found")
	}

	// VC(2→2): the compiler partitions each region's dependence graph into
	// two virtual clusters and marks chain leaders; at run time the
	// hardware maps virtual clusters onto the two physical clusters using
	// only workload counters and a two-entry mapping table.
	setup := clustersim.SetupVC(2, 2)

	res := clustersim.Run(w, setup, clustersim.RunOptions{NumUops: 100_000})
	if res.Err != nil {
		log.Fatal(res.Err)
	}

	m := res.Metrics
	fmt.Printf("workload      %s\n", w.Name)
	fmt.Printf("configuration %s\n", setup.Label)
	fmt.Printf("cycles        %d\n", m.Cycles)
	fmt.Printf("IPC           %.2f\n", m.IPC())
	fmt.Printf("copies        %d (%.1f per kuop)\n", m.Copies, m.CopiesPerKuop())
	fmt.Printf("alloc stalls  %d cycles\n", m.AllocStallCycles)
	fmt.Printf("mispredicts   %.1f%%\n", m.MispredictRate()*100)
	for i, pc := range m.PerCluster {
		fmt.Printf("cluster %d     %d micro-ops dispatched, %d copies exported\n",
			i, pc.Dispatched, pc.CopiesInserted)
	}

	// The steering hardware the hybrid scheme actually needs (paper
	// Table 1): counters and a tiny mapping table — no dependence checks,
	// no vote unit.
	cx := res.Complexity
	fmt.Printf("\nsteering logic activity: %d mapping-table reads, %d writes, "+
		"%d dependence checks (must be 0), %d vote ops (must be 0)\n",
		cx.MapReads, cx.MapWrites, cx.DependenceChecks, cx.VoteOps)
}
