// remote demonstrates the two layers of remote execution: the typed
// clusterd client SDK (submit a batch of declarative job specs, follow
// the SSE event stream, fetch a full result by content key), and the
// Runner seam above it — the same RunMatrixOn call that fans a matrix
// across local CPU cores executes it on a clusterd fleet when handed a
// remote runner.
//
// Start a server first, then point the example at it:
//
//	go run ./cmd/clusterd -addr :8080 -cachedir /tmp/clusterd-cache
//	go run ./examples/remote -addr http://localhost:8080
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"clustersim"
	"clustersim/client"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "clusterd base URL")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	c, err := client.New(*addr)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Health(ctx); err != nil {
		log.Fatalf("no clusterd at %s (start one with: go run ./cmd/clusterd): %v", *addr, err)
	}

	// --- Layer 1: the wire API, typed. -------------------------------
	specs := []clustersim.JobSpec{
		{Simpoint: "gzip-1", Setup: clustersim.SetupSpec{Kind: "OP", NumClusters: 2}, Opts: clustersim.OptionsSpec{NumUops: 20_000}},
		{Simpoint: "gzip-1", Setup: clustersim.SetupSpec{Kind: "VC", NumVC: 2, NumClusters: 2}, Opts: clustersim.OptionsSpec{NumUops: 20_000}},
	}
	sub, err := c.Submit(ctx, specs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %d jobs as %s\n", sub.Total, sub.ID)

	if err := c.Stream(ctx, sub.ID, func(ev client.JobEvent) {
		fmt.Printf("  done: %-8s %-6s IPC %.3f (%d copies)\n", ev.Simpoint, ev.Setup, ev.IPC, ev.Copies)
	}); err != nil {
		log.Fatal(err)
	}

	// Any result is fetchable by its content key, forever — the store is
	// content-addressed, so this works across daemon restarts too.
	res, err := c.Result(ctx, sub.Keys[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fetched %s/%s by key: %d cycles, %d uops\n",
		res.Simpoint.Name, res.Setup, res.Metrics.Cycles, res.Metrics.Uops)

	// --- Layer 2: the Runner seam. ------------------------------------
	// The exact code that runs a comparison matrix locally, pointed at
	// the fleet: only the runner changes.
	runner, err := clustersim.NewRemoteRunner(*addr, nil)
	if err != nil {
		log.Fatal(err)
	}
	workloads := []*clustersim.Workload{
		clustersim.WorkloadByName("gzip-1"),
		clustersim.WorkloadByName("mcf"),
	}
	setups := []clustersim.Setup{clustersim.SetupOP(2), clustersim.SetupVC(2, 2)}
	matrix, err := clustersim.RunMatrixOn(ctx, runner, workloads, setups, clustersim.RunOptions{NumUops: 20_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nremote matrix (slowdown vs OP):")
	for i, w := range workloads {
		if matrix[i][0].Err != nil || matrix[i][1].Err != nil {
			log.Fatalf("%s: %v %v", w.Name, matrix[i][0].Err, matrix[i][1].Err)
		}
		slow := (float64(matrix[i][1].Metrics.Cycles)/float64(matrix[i][0].Metrics.Cycles) - 1) * 100
		fmt.Printf("  %-8s VC vs OP: %+.2f%%\n", w.Name, slow)
	}

	st := runner.Stats()
	fmt.Printf("\nrunner stats: %d simulations executed remotely, %d served from the fleet's caches\n",
		st.Simulations, st.ResultHits+st.StoreHits)
}
