// custom_workload shows the library as a library: build your own static
// program with the program builder, let the compiler passes annotate it,
// and compare steering policies on it.
//
// The program is a sparse matrix-vector-like kernel: one pointer-chasing
// index stream, a strided value stream, a floating-point accumulation
// chain, and a biased inner-loop branch.
package main

import (
	"fmt"
	"log"

	"clustersim"
	"clustersim/internal/prog"
	"clustersim/internal/uarch"
)

func buildSpMV() *clustersim.Program {
	b := clustersim.NewProgram("spmv")

	idx := uarch.IntReg(1) // index chain (pointer chase through the row index array)
	val := uarch.FPReg(1)  // loaded matrix value
	acc := uarch.FPReg(2)  // accumulation chain
	vec := uarch.FPReg(3)  // vector element
	addr := uarch.IntReg(15)

	// Block 0: inner loop body.
	b.Load(idx, idx, prog.MemRef{ // col = colidx[ptr++] — serialized chase
		Pattern: prog.MemChase, Stream: 0, WorkingSet: 1 << 15, // L1-resident index array
	})
	b.Load(val, addr, prog.MemRef{ // a = vals[ptr] — streaming
		Pattern: prog.MemStride, Stream: 1, StrideBytes: 8, WorkingSet: 1 << 21,
	})
	b.Load(vec, idx, prog.MemRef{ // x = v[col] — random gather
		Pattern: prog.MemRandom, Stream: 2, WorkingSet: 1 << 18,
	})
	b.FP(uarch.OpFMul, val, val, vec) // a * x
	b.FP(uarch.OpFAdd, acc, acc, val) // acc += a*x
	b.Int(uarch.OpAdd, uarch.IntReg(2), uarch.IntReg(2), uarch.IntReg(0))
	b.Branch(uarch.IntReg(2), 0.94, 0.9) // inner loop: ~16 iterations
	b.Edge(0, 0.94)

	// Block 1: row epilogue — store the dot product.
	rowEnd := b.NewBlock()
	b.Store(acc, addr, prog.MemRef{
		Pattern: prog.MemStride, Stream: 3, StrideBytes: 8, WorkingSet: 1 << 20,
	})
	b.Int(uarch.OpAdd, uarch.IntReg(3), uarch.IntReg(3), uarch.IntReg(0))
	b.Block(0).Edge(rowEnd, 0.06)
	b.Block(rowEnd).Jump(0)

	return b.MustBuild()
}

func main() {
	w := clustersim.CustomWorkload(buildSpMV(), 42)
	setups := []clustersim.Setup{
		clustersim.SetupOP(2),
		clustersim.SetupOneCluster(2),
		clustersim.SetupVC(2, 2),
	}
	fmt.Println("custom SpMV-like kernel, 2-cluster machine, 80k micro-ops:")
	var base int64
	for i, setup := range setups {
		res := clustersim.Run(w, setup, clustersim.RunOptions{NumUops: 80_000})
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		m := res.Metrics
		if i == 0 {
			base = m.Cycles
		}
		fmt.Printf("  %-12s cycles=%-8d IPC=%-5.2f copies/kuop=%-6.1f L1=%d L2=%d mem=%d  vs OP %+.2f%%\n",
			setup.Label, m.Cycles, m.IPC(), m.CopiesPerKuop(),
			m.L1Hits, m.L2Hits, m.MemAccesses,
			(float64(m.Cycles)/float64(base)-1)*100)
	}
}
