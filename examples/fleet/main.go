// fleet demonstrates sharded multi-host execution: the same RunMatrixOn
// call that fans a matrix across local CPU cores — or one clusterd
// worker — executes it across a whole fleet when handed a fleet runner.
// Jobs shard by consistent hash of their result content key, so each
// worker's store stays hot for its key range across runs; a worker
// killed mid-run is survived by re-sharding its unfinished jobs onto the
// rest.
//
// With -drain the example then walks a planned scale-down: the last
// worker's results migrate to its ring successors before it is removed,
// and the matrix re-runs against the shrunken fleet without a single
// re-simulation — the survivors inherited the departing worker's key
// range warm.
//
// Start two workers first, then point the example at both:
//
//	go run ./cmd/clusterd -addr :8080 -cachedir /tmp/fleet-w1
//	go run ./cmd/clusterd -addr :8081 -cachedir /tmp/fleet-w2
//	go run ./examples/fleet -workers http://localhost:8080,http://localhost:8081 -drain
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"clustersim"
	"clustersim/fleet"
)

func main() {
	workers := flag.String("workers", "http://localhost:8080,http://localhost:8081",
		"comma-separated clusterd base URLs")
	drain := flag.Bool("drain", false, "after the matrix, drain the last worker and re-run against the survivors")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	var urls []string
	for _, u := range strings.Split(*workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	// Health checks run at construction: a dead or unauthorized worker
	// fails here, naming itself, before any job is submitted.
	runner, err := fleet.New(urls,
		fleet.WithLog(log.Printf),
		fleet.WithSteal(4), // idle workers may duplicate up to 4 stragglers
	)
	if err != nil {
		log.Fatalf("fleet unavailable (start workers with: go run ./cmd/clusterd): %v", err)
	}
	fmt.Printf("fleet of %d workers: %s\n", len(urls), strings.Join(urls, ", "))

	// The exact matrix code from the local and single-host examples —
	// only the runner changed.
	workloads := []*clustersim.Workload{
		clustersim.WorkloadByName("gzip-1"),
		clustersim.WorkloadByName("mcf"),
		clustersim.WorkloadByName("crafty"),
		clustersim.WorkloadByName("swim"),
	}
	setups := []clustersim.Setup{clustersim.SetupOP(2), clustersim.SetupVC(2, 2)}
	matrix, err := clustersim.RunMatrixOn(ctx, runner, workloads, setups,
		clustersim.RunOptions{NumUops: 20_000})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nsharded matrix (slowdown vs OP):")
	for i, w := range workloads {
		if matrix[i][0].Err != nil || matrix[i][1].Err != nil {
			log.Fatalf("%s: %v %v", w.Name, matrix[i][0].Err, matrix[i][1].Err)
		}
		slow := (float64(matrix[i][1].Metrics.Cycles)/float64(matrix[i][0].Metrics.Cycles) - 1) * 100
		fmt.Printf("  %-8s VC vs OP: %+.2f%%\n", w.Name, slow)
	}

	st := runner.Stats()
	fmt.Printf("\nfleet stats: %d simulations executed, %d served from worker caches, %d/%d workers alive\n",
		st.Simulations, st.ResultHits+st.StoreHits, runner.Alive(), len(urls))

	if !*drain || len(urls) < 2 {
		return
	}

	// Planned scale-down: the departing worker keeps serving while every
	// result blob it holds migrates to the workers that will inherit its
	// key range, and only then is it removed from the ring.
	leaving := urls[len(urls)-1]
	fmt.Printf("\ndraining %s out of the fleet...\n", leaving)
	if err := runner.Drain(ctx, leaving); err != nil {
		log.Fatalf("drain: %v", err)
	}
	fs := runner.FleetStats()
	fmt.Printf("drained: %d result blobs migrated to ring successors (membership epoch %d)\n",
		fs.DrainMigrated, fs.Epoch)
	for _, m := range fs.Members {
		fmt.Printf("  %-8s %s\n", m.State, m.URL)
	}

	// The same matrix against the shrunken fleet: every key now routes to
	// a survivor whose store already holds the migrated result, so this
	// re-run executes zero simulations.
	before := runner.Stats().Simulations
	if _, err := clustersim.RunMatrixOn(ctx, runner, workloads, setups,
		clustersim.RunOptions{NumUops: 20_000}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nre-run after drain: %d new simulations (want 0 — the survivors inherited the range warm)\n",
		runner.Stats().Simulations-before)
}
