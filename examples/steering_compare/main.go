// steering_compare reproduces the paper's core comparison (Figure 5's
// methodology) on a chosen set of workloads: all five Table 3 steering
// configurations on the 2-cluster machine, slowdowns relative to the
// hardware-only OP baseline.
package main

import (
	"fmt"
	"log"

	"clustersim"
)

func main() {
	workloads := clustersim.QuickWorkloads()
	setups := []clustersim.Setup{
		clustersim.SetupOP(2),
		clustersim.SetupOneCluster(2),
		clustersim.SetupOB(2),
		clustersim.SetupRHOP(2),
		clustersim.SetupVC(2, 2),
	}

	results := clustersim.RunMatrix(workloads, setups, clustersim.RunOptions{NumUops: 60_000}, 0)

	fmt.Printf("%-10s %8s", "workload", "OP IPC")
	for _, s := range setups[1:] {
		fmt.Printf("%14s", s.Label)
	}
	fmt.Println()
	sums := make([]float64, len(setups))
	for i, w := range workloads {
		base := results[i][0]
		if base.Err != nil {
			log.Fatalf("%s/OP: %v", w.Name, base.Err)
		}
		fmt.Printf("%-10s %8.2f", w.Name, base.Metrics.IPC())
		for j := 1; j < len(setups); j++ {
			r := results[i][j]
			if r.Err != nil {
				log.Fatalf("%s/%s: %v", w.Name, setups[j].Label, r.Err)
			}
			slow := (float64(r.Metrics.Cycles)/float64(base.Metrics.Cycles) - 1) * 100
			sums[j] += slow
			fmt.Printf("%+13.2f%%", slow)
		}
		fmt.Println()
	}
	fmt.Printf("%-10s %8s", "AVG", "")
	for j := 1; j < len(setups); j++ {
		fmt.Printf("%+13.2f%%", sums[j]/float64(len(workloads)))
	}
	fmt.Println()
	fmt.Println("\npaper averages: one-cluster 12.19%, OB 6.50%, RHOP 5.40%, VC 2.62%")
}
